package op

import (
	"math"

	"asyncmg/internal/par"
	"asyncmg/internal/sparse"
)

// CSR32 is compressed sparse row storage with float32 values and int32
// indices: 8 bytes per nonzero against float64 CSR's 16 — the
// mixed-precision storage for coarse-level operators and interpolants
// (AMGCL's precision policy). Every kernel converts each stored value to
// float64 at load and accumulates in float64, so only the matrix entries
// themselves are rounded — once, at conversion — and all kernels keep the
// package sparse contract (ascending-column row loops, row-independent
// sharding bitwise-identical to serial at any worker count).
type CSR32 struct {
	rows, cols int
	rowPtr     []int32
	colIdx     []int32
	vals       []float32
}

// NewCSR32 converts a float64 CSR to float32 storage. It panics if the
// matrix has more than MaxInt32 rows or nonzeros (coarse-level matrices
// are orders of magnitude below that).
func NewCSR32(m *sparse.CSR) *CSR32 {
	if m.Rows >= math.MaxInt32 || m.NNZ() >= math.MaxInt32 || m.Cols >= math.MaxInt32 {
		panic("op: matrix too large for int32 CSR32 indices")
	}
	c := &CSR32{
		rows:   m.Rows,
		cols:   m.Cols,
		rowPtr: make([]int32, len(m.RowPtr)),
		colIdx: make([]int32, len(m.ColIdx)),
		vals:   make([]float32, len(m.Vals)),
	}
	for i, p := range m.RowPtr {
		c.rowPtr[i] = int32(p)
	}
	for i, j := range m.ColIdx {
		c.colIdx[i] = int32(j)
	}
	for i, v := range m.Vals {
		c.vals[i] = float32(v)
	}
	return c
}

// ToCSR expands back to float64 CSR (tests and diagnostics).
func (a *CSR32) ToCSR() *sparse.CSR {
	m := &sparse.CSR{
		Rows:   a.rows,
		Cols:   a.cols,
		RowPtr: make([]int, len(a.rowPtr)),
		ColIdx: make([]int, len(a.colIdx)),
		Vals:   make([]float64, len(a.vals)),
	}
	for i, p := range a.rowPtr {
		m.RowPtr[i] = int(p)
	}
	for i, j := range a.colIdx {
		m.ColIdx[i] = int(j)
	}
	for i, v := range a.vals {
		m.Vals[i] = float64(v)
	}
	return m
}

func (a *CSR32) Rows() int          { return a.rows }
func (a *CSR32) Cols() int          { return a.cols }
func (a *CSR32) NNZEquivalent() int { return len(a.vals) }

// Bytes reports resident storage: 4 bytes per row pointer, column index
// and value.
func (a *CSR32) Bytes() int {
	return 4*len(a.rowPtr) + 4*len(a.colIdx) + 4*len(a.vals)
}

func (a *CSR32) ApplyRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			s += float64(a.vals[q]) * x[a.colIdx[q]]
		}
		y[i] = s
	}
}

func (a *CSR32) applyAddRange(y, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			s += float64(a.vals[q]) * x[a.colIdx[q]]
		}
		y[i] += s
	}
}

func (a *CSR32) ResidualRange(r, b, x []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := b[i]
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			s -= float64(a.vals[q]) * x[a.colIdx[q]]
		}
		r[i] = s
	}
}

func (a *CSR32) Apply(y, x []float64) {
	if !par.Par(len(a.vals)) {
		a.ApplyRange(y, x, 0, a.rows)
		return
	}
	runSharded(a.rows, func(k *shardKernel) { k.mode, k.opr, k.y, k.x = modeApply, a, y, x })
}

func (a *CSR32) Residual(r, b, x []float64) {
	if !par.Par(len(a.vals)) {
		a.ResidualRange(r, b, x, 0, a.rows)
		return
	}
	runSharded(a.rows, func(k *shardKernel) { k.mode, k.opr, k.y, k.b, k.x = modeResidual, a, r, b, x })
}

func (a *CSR32) Diag() []float64 {
	d := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			if int(a.colIdx[q]) == i {
				d[i] = float64(a.vals[q])
				break
			}
		}
	}
	return d
}

func (a *CSR32) RowL1Norms() []float64 {
	l1 := make([]float64, a.rows)
	for i := 0; i < a.rows; i++ {
		s := 0.0
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			s += math.Abs(float64(a.vals[q]))
		}
		l1[i] = s
	}
	return l1
}

func (a *CSR32) fusedJacobiResidualRange(e, t, invDiag, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		e[i] = invDiag[i] * r[i]
		s := r[i]
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			j := a.colIdx[q]
			s -= float64(a.vals[q]) * (invDiag[j] * r[j])
		}
		t[i] = s
	}
}

func (a *CSR32) FusedJacobiResidual(e, t, invDiag, r []float64) {
	if !par.Par(len(a.vals)) {
		a.fusedJacobiResidualRange(e, t, invDiag, r, 0, a.rows)
		return
	}
	runSharded(a.rows, func(k *shardKernel) {
		k.mode, k.jac, k.e, k.y, k.inv, k.x = modeJacobi, a, e, t, invDiag, r
	})
}

func (a *CSR32) ScaledResidualRange(w, scale, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := 0.0
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			s += float64(a.vals[q]) * r[a.colIdx[q]]
		}
		w[i] = r[i] - scale[i]*s
	}
}

func (a *CSR32) SmoothedResidualRange(w, scale, r []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		s := r[i]
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			j := a.colIdx[q]
			s -= float64(a.vals[q]) * (scale[j] * r[j])
		}
		w[i] = s
	}
}

func (a *CSR32) ScaledResidual(w, scale, r []float64) {
	if !par.Par(len(a.vals)) {
		a.ScaledResidualRange(w, scale, r, 0, a.rows)
		return
	}
	runSharded(a.rows, func(k *shardKernel) {
		k.mode, k.sm, k.y, k.inv, k.x = modeScaledRes, a, w, scale, r
	})
}

func (a *CSR32) SmoothedResidual(w, scale, r []float64) {
	if !par.Par(len(a.vals)) {
		a.SmoothedResidualRange(w, scale, r, 0, a.rows)
		return
	}
	runSharded(a.rows, func(k *shardKernel) {
		k.mode, k.sm, k.y, k.inv, k.x = modeSmoothedRes, a, w, scale, r
	})
}

// ---- multi-RHS (k packed columns, row-major) ----

func (a *CSR32) matVecBlockRange(y, x []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		yi := y[i*k : (i+1)*k]
		for c := range yi {
			yi[c] = 0
		}
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			v := float64(a.vals[q])
			xj := x[int(a.colIdx[q])*k : (int(a.colIdx[q])+1)*k]
			for c := range yi {
				yi[c] += v * xj[c]
			}
		}
	}
}

func (a *CSR32) matVecAddBlockRange(y, x []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		yi := y[i*k : (i+1)*k]
		qlo, qhi := a.rowPtr[i], a.rowPtr[i+1]
		for c := range yi {
			s := 0.0
			for q := qlo; q < qhi; q++ {
				s += float64(a.vals[q]) * x[int(a.colIdx[q])*k+c]
			}
			yi[c] += s
		}
	}
}

func (a *CSR32) residualBlockRange(r, b, x []float64, k, lo, hi int) {
	for i := lo; i < hi; i++ {
		ri := r[i*k : (i+1)*k]
		copy(ri, b[i*k:(i+1)*k])
		for q := a.rowPtr[i]; q < a.rowPtr[i+1]; q++ {
			v := float64(a.vals[q])
			xj := x[int(a.colIdx[q])*k : (int(a.colIdx[q])+1)*k]
			for c := range ri {
				ri[c] -= v * xj[c]
			}
		}
	}
}

func (a *CSR32) runBlock(mode int, y, b, x []float64, k int) {
	if !par.Par(len(a.vals) * k) {
		switch mode {
		case modeBlockApply:
			a.matVecBlockRange(y, x, k, 0, a.rows)
		case modeBlockApplyAdd:
			a.matVecAddBlockRange(y, x, k, 0, a.rows)
		default:
			a.residualBlockRange(y, b, x, k, 0, a.rows)
		}
		return
	}
	runSharded(a.rows, func(sk *shardKernel) {
		sk.mode, sk.blk, sk.y, sk.b, sk.x, sk.k = mode, a, y, b, x, k
	})
}

func (a *CSR32) MatVecBlock(y, x []float64, k int)      { a.runBlock(modeBlockApply, y, nil, x, k) }
func (a *CSR32) MatVecAddBlock(y, x []float64, k int)   { a.runBlock(modeBlockApplyAdd, y, nil, x, k) }
func (a *CSR32) ResidualBlock(r, b, x []float64, k int) { a.runBlock(modeBlockResidual, r, b, x, k) }

// ApplyBlock is MatVecBlock under the op.BlockApplier capability name.
func (a *CSR32) ApplyBlock(y, x []float64, k int) { a.MatVecBlock(y, x, k) }

// CSR32Interp is an interpolant pair (P, Pᵀ) in float32 storage.
type CSR32Interp struct {
	P  *CSR32
	PT *CSR32
}

// NewCSR32Interp converts a float64 interpolant pair. pt may be nil.
func NewCSR32Interp(p, pt *sparse.CSR) *CSR32Interp {
	if pt == nil {
		pt = p.Transpose()
	}
	return &CSR32Interp{P: NewCSR32(p), PT: NewCSR32(pt)}
}

func (t *CSR32Interp) FineRows() int      { return t.P.rows }
func (t *CSR32Interp) CoarseRows() int    { return t.P.cols }
func (t *CSR32Interp) NNZEquivalent() int { return len(t.P.vals) }
func (t *CSR32Interp) Bytes() int         { return t.P.Bytes() + t.PT.Bytes() }

func (t *CSR32Interp) Apply(fine, coarse []float64) { t.P.Apply(fine, coarse) }

func (t *CSR32Interp) applyAddRange(fine, coarse []float64, lo, hi int) {
	t.P.applyAddRange(fine, coarse, lo, hi)
}

func (t *CSR32Interp) ApplyAdd(fine, coarse []float64) {
	if !par.Par(len(t.P.vals)) {
		t.P.applyAddRange(fine, coarse, 0, t.P.rows)
		return
	}
	runSharded(t.P.rows, func(k *shardKernel) {
		k.mode, k.itp, k.y, k.x = modeInterpApplyAdd, t, fine, coarse
	})
}
func (t *CSR32Interp) ApplyRange(fine, coarse []float64, lo, hi int) {
	t.P.ApplyRange(fine, coarse, lo, hi)
}
func (t *CSR32Interp) ApplyT(coarse, fine []float64) { t.PT.Apply(coarse, fine) }
func (t *CSR32Interp) ApplyTRange(coarse, fine []float64, lo, hi int) {
	t.PT.ApplyRange(coarse, fine, lo, hi)
}

func (t *CSR32Interp) ApplyBlock(fine, coarse []float64, k int) {
	t.P.MatVecBlock(fine, coarse, k)
}
func (t *CSR32Interp) ApplyAddBlock(fine, coarse []float64, k int) {
	t.P.MatVecAddBlock(fine, coarse, k)
}
func (t *CSR32Interp) ApplyTBlock(coarse, fine []float64, k int) {
	t.PT.MatVecBlock(coarse, fine, k)
}
