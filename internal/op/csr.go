package op

import (
	"asyncmg/internal/sparse"
	"asyncmg/internal/vec"
)

// CSROp adapts a float64 *sparse.CSR to the Operator interface. Every
// method delegates to the corresponding sparse kernel with identical
// arguments, so an engine running on CSROp is bitwise-identical to one
// calling the CSR methods directly — the adapter adds dispatch, not
// arithmetic.
type CSROp struct {
	M *sparse.CSR
}

// FromCSR wraps m as an Operator.
func FromCSR(m *sparse.CSR) *CSROp { return &CSROp{M: m} }

func (a *CSROp) Rows() int          { return a.M.Rows }
func (a *CSROp) Cols() int          { return a.M.Cols }
func (a *CSROp) NNZEquivalent() int { return a.M.NNZ() }

// Bytes reports the resident CSR storage: 8 bytes per RowPtr/ColIdx int
// and per float64 value on 64-bit targets.
func (a *CSROp) Bytes() int {
	return 8*len(a.M.RowPtr) + 8*len(a.M.ColIdx) + 8*len(a.M.Vals)
}

func (a *CSROp) Apply(y, x []float64)                  { a.M.MatVecPar(y, x) }
func (a *CSROp) ApplyRange(y, x []float64, lo, hi int) { a.M.MatVecRange(y, x, lo, hi) }
func (a *CSROp) Residual(r, b, x []float64)            { a.M.ResidualPar(r, b, x) }
func (a *CSROp) ResidualRange(r, b, x []float64, lo, hi int) {
	a.M.ResidualRange(r, b, x, lo, hi)
}
func (a *CSROp) Diag() []float64       { return a.M.Diag() }
func (a *CSROp) RowL1Norms() []float64 { return a.M.RowL1Norms() }

func (a *CSROp) CSR() *sparse.CSR { return a.M }

func (a *CSROp) FusedJacobiResidual(e, t, invDiag, r []float64) {
	a.M.FusedJacobiResidual(e, t, invDiag, r)
}

func (a *CSROp) ScaledResidual(w, scale, r []float64) { a.M.ScaledResidualPar(w, scale, r) }
func (a *CSROp) ScaledResidualRange(w, scale, r []float64, lo, hi int) {
	a.M.ScaledResidualRange(w, scale, r, lo, hi)
}
func (a *CSROp) SmoothedResidual(w, scale, r []float64) { a.M.SmoothedResidualPar(w, scale, r) }
func (a *CSROp) SmoothedResidualRange(w, scale, r []float64, lo, hi int) {
	a.M.SmoothedResidualRange(w, scale, r, lo, hi)
}

// ResidualAtomicRange computes dst[i] = b[i] − Σ_j a_ij·x.Load(j) for
// rows [lo, hi) against a shared atomic iterate. The loop body is the one
// the asynchronous runtime's global-residual refresh has always run.
func (a *CSROp) ResidualAtomicRange(dst *vec.Atomic, b []float64, x *vec.Atomic, lo, hi int) {
	m := a.M
	for i := lo; i < hi; i++ {
		s := b[i]
		for p := m.RowPtr[i]; p < m.RowPtr[i+1]; p++ {
			s -= m.Vals[p] * x.Load(m.ColIdx[p])
		}
		dst.Store(i, s)
	}
}

func (a *CSROp) ResidualBlock(r, b, x []float64, k int) { a.M.ResidualBlockPar(r, b, x, k) }
func (a *CSROp) ApplyBlock(y, x []float64, k int)       { a.M.MatVecBlockPar(y, x, k) }

// CSRInterp adapts a float64 CSR interpolant pair (P and its cached
// transpose Pᵀ) to the Interp interface, delegating to the sparse kernels
// bitwise.
type CSRInterp struct {
	P  *sparse.CSR
	PT *sparse.CSR
}

// InterpFromCSR wraps p (and its transpose pt, which may be nil — it is
// computed once here) as an Interp.
func InterpFromCSR(p, pt *sparse.CSR) *CSRInterp {
	if pt == nil {
		pt = p.Transpose()
	}
	return &CSRInterp{P: p, PT: pt}
}

func (t *CSRInterp) FineRows() int      { return t.P.Rows }
func (t *CSRInterp) CoarseRows() int    { return t.P.Cols }
func (t *CSRInterp) NNZEquivalent() int { return t.P.NNZ() }

func (t *CSRInterp) Bytes() int {
	b := 8*len(t.P.RowPtr) + 8*len(t.P.ColIdx) + 8*len(t.P.Vals)
	if t.PT != nil {
		b += 8*len(t.PT.RowPtr) + 8*len(t.PT.ColIdx) + 8*len(t.PT.Vals)
	}
	return b
}

func (t *CSRInterp) Apply(fine, coarse []float64)    { t.P.MatVecPar(fine, coarse) }
func (t *CSRInterp) ApplyAdd(fine, coarse []float64) { t.P.MatVecAddPar(fine, coarse) }
func (t *CSRInterp) ApplyRange(fine, coarse []float64, lo, hi int) {
	t.P.MatVecRange(fine, coarse, lo, hi)
}
func (t *CSRInterp) ApplyT(coarse, fine []float64) { t.PT.MatVecPar(coarse, fine) }
func (t *CSRInterp) ApplyTRange(coarse, fine []float64, lo, hi int) {
	t.PT.MatVecRange(coarse, fine, lo, hi)
}

func (t *CSRInterp) ApplyBlock(fine, coarse []float64, k int) {
	t.P.MatVecBlockPar(fine, coarse, k)
}
func (t *CSRInterp) ApplyAddBlock(fine, coarse []float64, k int) {
	t.P.MatVecAddBlockPar(fine, coarse, k)
}
func (t *CSRInterp) ApplyTBlock(coarse, fine []float64, k int) {
	t.PT.MatVecBlockPar(coarse, fine, k)
}

func asCSRInterp(itp Interp) *CSRInterp {
	if t, ok := itp.(*CSRInterp); ok {
		return t
	}
	return nil
}
