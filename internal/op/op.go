// Package op defines the operator abstraction the cycle engine runs on:
// a linear operator A (matrix-vector products, residuals, fused smoothing
// kernels, diagonal extraction) and an interpolation operator P
// (prolongation, restriction), decoupled from any particular storage.
//
// Implementations:
//
//   - CSROp wraps a float64 *sparse.CSR and delegates to the sharded/fused
//     kernels of package sparse — it IS today's behavior, bitwise (the
//     golden tests pin it).
//   - CSR32 stores a matrix in float32 values with int32 indices (half the
//     bytes per nonzero) and accumulates products in float64 — the
//     mixed-precision storage for coarse-level and interpolant matrices
//     (AMGCL's design: hierarchy storage drops ~50% with no convergence
//     cost at multigrid tolerances).
//   - Stencil7/Stencil27 are matrix-free operators for the structured
//     7-point/27-point Laplacians of package grid: the fine level of a
//     structured solve never materializes a CSR matrix. Their kernels are
//     constructed to be bitwise-identical to the CSR kernels on the same
//     problem and shard over the par worker pool.
//   - GeomInterp is the matrix-free trilinear interpolant between a fine
//     n³ grid and its 2h coarsening — prolongation and restriction without
//     storing P or Pᵀ.
//   - SmoothedInterp composes P̄ = (I − diag(s)·A)·P from an Operator and
//     an Interp without materializing P̄ or P̄ᵀ (Multadd's smoothed
//     interpolants become zero-storage).
//
// All kernels follow the package sparse contract: row loops shard over the
// par pool above the work threshold and are bitwise-identical to their
// serial forms at any worker count.
package op

import (
	"sync"

	"asyncmg/internal/par"
	"asyncmg/internal/sparse"
	"asyncmg/internal/vec"
)

// Precision selects the storage precision policy of a hierarchy.
type Precision int

const (
	// Float64 stores every hierarchy matrix in float64 CSR (the default;
	// bitwise-pinned by the golden tests).
	Float64 Precision = iota
	// CoarseFloat32 stores coarse-level operators (k >= 1) and all
	// interpolants in float32 with float64 accumulation; the fine operator
	// and the coarse LU factorization stay float64.
	CoarseFloat32
)

func (p Precision) String() string {
	switch p {
	case Float64:
		return "f64"
	case CoarseFloat32:
		return "f32-coarse"
	}
	return "unknown"
}

// Operator is a square linear operator A as the cycle engine consumes it:
// products, residuals and the matrix-derived vectors smoother construction
// needs. Full-vector methods shard over the par pool when the operator
// carries enough work; Range methods compute the half-open row range
// [lo, hi) serially on the caller (the building block of goroutine teams).
type Operator interface {
	// Rows and Cols are the operator dimensions.
	Rows() int
	Cols() int
	// NNZEquivalent is the number of stored (or, for matrix-free
	// operators, implied) nonzeros: the work unit of one apply, used for
	// parallel-dispatch thresholds, flop estimates and operator
	// complexity.
	NNZEquivalent() int
	// Bytes is the resident storage footprint of the operator
	// (matrix-free operators report O(1)).
	Bytes() int
	// Apply computes y = A x.
	Apply(y, x []float64)
	// ApplyRange computes y[lo:hi] = (A x)[lo:hi].
	ApplyRange(y, x []float64, lo, hi int)
	// Residual computes r = b − A x.
	Residual(r, b, x []float64)
	// ResidualRange computes r[lo:hi] = (b − A x)[lo:hi].
	ResidualRange(r, b, x []float64, lo, hi int)
	// Diag returns the main diagonal as a fresh slice.
	Diag() []float64
	// RowL1Norms returns Σ_j |a_ij| per row as a fresh slice.
	RowL1Norms() []float64
}

// Interp is the prolongation/restriction view of one level pair:
// fine = P·coarse and coarse = Pᵀ·fine. Apply* methods range over fine
// rows, ApplyT* methods over coarse rows.
type Interp interface {
	FineRows() int
	CoarseRows() int
	NNZEquivalent() int
	Bytes() int
	// Apply computes fine = P coarse.
	Apply(fine, coarse []float64)
	// ApplyAdd computes fine += P coarse.
	ApplyAdd(fine, coarse []float64)
	// ApplyRange computes fine[lo:hi] = (P coarse)[lo:hi].
	ApplyRange(fine, coarse []float64, lo, hi int)
	// ApplyT computes coarse = Pᵀ fine.
	ApplyT(coarse, fine []float64)
	// ApplyTRange computes coarse[lo:hi] = (Pᵀ fine)[lo:hi].
	ApplyTRange(coarse, fine []float64, lo, hi int)
}

// ---- optional capabilities ----

// JacobiFused is implemented by operators that can run the zero-guess
// diagonal smoothing sweep fused with its post-sweep residual in one pass:
// e = invDiag∘r and t = r − A e.
type JacobiFused interface {
	FusedJacobiResidual(e, t, invDiag, r []float64)
}

// SmoothedApplier is implemented by operators providing the two fused
// one-pass kernels the composed smoothed interpolant P̄ = (I − diag(s)A)P
// needs:
//
//	ScaledResidual:   w = r − s∘(A r)   (the P̄ apply tail)
//	SmoothedResidual: w = r − A (s∘r)   (the P̄ᵀ apply head; A symmetric)
//
// Both recompute the scaled operand on the fly (like the fused Jacobi
// kernel), so they are single passes with no ordering hazard.
type SmoothedApplier interface {
	ScaledResidual(w, scale, r []float64)
	ScaledResidualRange(w, scale, r []float64, lo, hi int)
	SmoothedResidual(w, scale, r []float64)
	SmoothedResidualRange(w, scale, r []float64, lo, hi int)
}

// AtomicResidualer computes residual rows against a shared atomic iterate
// (the asynchronous shared-memory runtime's global-residual refresh):
// dst[i] = b[i] − Σ_j a_ij·x.Load(j) for i in [lo, hi), stored with
// dst.Store(i, ·).
type AtomicResidualer interface {
	ResidualAtomicRange(dst *vec.Atomic, b []float64, x *vec.Atomic, lo, hi int)
}

// BlockOperator is implemented by operators with a fused multi-RHS
// residual (k packed columns, row-major): the block cycle path requires it
// on every level.
type BlockOperator interface {
	ResidualBlock(r, b, x []float64, k int)
}

// BlockApplier is the multi-RHS product capability y = A x (k packed
// columns, row-major). The block Krylov path requires it on the fine
// level; the CSR-backed operators provide it.
type BlockApplier interface {
	ApplyBlock(y, x []float64, k int)
}

// BlockInterp is the multi-RHS capability of an Interp.
type BlockInterp interface {
	ApplyBlock(fine, coarse []float64, k int)
	ApplyAddBlock(fine, coarse []float64, k int)
	ApplyTBlock(coarse, fine []float64, k int)
}

// Materializer is implemented by operators backed by (or able to cheaply
// expose) a float64 CSR matrix. Consumers that genuinely need row storage
// (block-triangular smoothers, the dense coarse factorization, sparse
// products) use it; AsCSR returns nil for matrix-free operators.
type Materializer interface {
	CSR() *sparse.CSR
}

// AsCSR returns the float64 CSR behind a, or nil when a is matrix-free or
// stored in another precision.
func AsCSR(a Operator) *sparse.CSR {
	if m, ok := a.(Materializer); ok {
		return m.CSR()
	}
	return nil
}

// Coarsenable is an Operator that can produce its own first coarsening:
// the interpolant to a coarser space plus the Galerkin coarse matrix
// Pᵀ·A·P as a materialized CSR, without ever materializing A itself. The
// structured stencil operators implement it with the trilinear 2h
// interpolant; the AMG setup builds the rest of the hierarchy
// algebraically from the returned coarse matrix.
type Coarsenable interface {
	Operator
	Coarsen() (itp Interp, coarse *sparse.CSR, err error)
}

// ---- fused engine-facing helpers ----

// FusedResidualRestrict computes rc = Pᵀ (b − A x), the down-leg step of
// every multiplicative V-cycle, generically over operator and interpolant.
// For the float64 CSR pair it delegates to the fused sparse kernel
// (bitwise-identical to the pre-refactor engine); for every other pairing
// it runs the operator's sharded residual into tmp followed by the
// interpolant's restriction — the same two-step sequence the sparse kernel
// uses above the parallel threshold, which is bitwise-identical to the
// fused scatter by the kernel contract. tmp must be a fine-length scratch.
func FusedResidualRestrict(a Operator, itp Interp, rc, b, x, tmp []float64) {
	if ac, ic := AsCSR(a), asCSRInterp(itp); ac != nil && ic != nil {
		sparse.FusedResidualRestrict(ac, ic.P, ic.PT, rc, b, x, tmp)
		return
	}
	a.Residual(tmp, b, x)
	itp.ApplyT(rc, tmp)
}

// FusedJacobiResidualRestrict fuses a multiplicative down-leg level step
// for diagonal smoothers: e = invDiag∘r, then rc = Pᵀ (r − A e). Same
// dispatch policy as FusedResidualRestrict.
func FusedJacobiResidualRestrict(a Operator, itp Interp, e, rc, invDiag, r, tmp []float64) {
	if ac, ic := AsCSR(a), asCSRInterp(itp); ac != nil && ic != nil {
		sparse.FusedJacobiResidualRestrict(ac, ic.P, ic.PT, e, rc, invDiag, r, tmp)
		return
	}
	if jf, ok := a.(JacobiFused); ok {
		jf.FusedJacobiResidual(e, tmp, invDiag, r)
	} else {
		n := a.Rows()
		for i := 0; i < n; i++ {
			e[i] = invDiag[i] * r[i]
		}
		a.Residual(tmp, r, e)
	}
	itp.ApplyT(rc, tmp)
}

// ScaledResidual computes w = r − scale∘(A r) through the operator's fused
// capability, falling back to a two-pass apply with the caller's scratch.
func ScaledResidual(a Operator, w, scale, r, scratch []float64) {
	if sa, ok := a.(SmoothedApplier); ok {
		sa.ScaledResidual(w, scale, r)
		return
	}
	a.Apply(scratch, r)
	for i := range w {
		w[i] = r[i] - scale[i]*scratch[i]
	}
}

// SmoothedResidual computes w = r − A (scale∘r) through the operator's
// fused capability, falling back to a two-pass apply.
func SmoothedResidual(a Operator, w, scale, r, scratch []float64) {
	if sa, ok := a.(SmoothedApplier); ok {
		sa.SmoothedResidual(w, scale, r)
		return
	}
	for i := range scratch {
		scratch[i] = scale[i] * r[i]
	}
	a.Apply(w, scratch)
	for i := range w {
		w[i] = r[i] - w[i]
	}
}

// ---- generic sharding machinery ----

// ranger is the internal face of sharded full-vector kernels: every
// operator/interp in this package implements serial Range methods, and the
// shared shard kernel below dispatches onto them without per-call closure
// allocation.
type shardKernel struct {
	mode            int
	opr             Operator
	itp             Interp
	jac             jacobiRanger
	sm              SmoothedApplier
	y, x, b, e, inv []float64
	k               int
	blk             blockRanger
}

type jacobiRanger interface {
	fusedJacobiResidualRange(e, t, invDiag, r []float64, lo, hi int)
}

type blockRanger interface {
	matVecBlockRange(y, x []float64, k, lo, hi int)
	matVecAddBlockRange(y, x []float64, k, lo, hi int)
	residualBlockRange(r, b, x []float64, k, lo, hi int)
}

const (
	modeApply = iota
	modeResidual
	modeInterpApply
	modeInterpApplyAdd
	modeInterpApplyT
	modeJacobi
	modeScaledRes
	modeSmoothedRes
	modeBlockApply
	modeBlockApplyAdd
	modeBlockResidual
)

func (s *shardKernel) Do(_, lo, hi int) {
	switch s.mode {
	case modeApply:
		s.opr.ApplyRange(s.y, s.x, lo, hi)
	case modeResidual:
		s.opr.ResidualRange(s.y, s.b, s.x, lo, hi)
	case modeInterpApply:
		s.itp.ApplyRange(s.y, s.x, lo, hi)
	case modeInterpApplyAdd:
		s.itp.(applyAddRanger).applyAddRange(s.y, s.x, lo, hi)
	case modeInterpApplyT:
		s.itp.ApplyTRange(s.y, s.x, lo, hi)
	case modeJacobi:
		s.jac.fusedJacobiResidualRange(s.e, s.y, s.inv, s.x, lo, hi)
	case modeScaledRes:
		s.sm.ScaledResidualRange(s.y, s.inv, s.x, lo, hi)
	case modeSmoothedRes:
		s.sm.SmoothedResidualRange(s.y, s.inv, s.x, lo, hi)
	case modeBlockApply:
		s.blk.matVecBlockRange(s.y, s.x, s.k, lo, hi)
	case modeBlockApplyAdd:
		s.blk.matVecAddBlockRange(s.y, s.x, s.k, lo, hi)
	case modeBlockResidual:
		s.blk.residualBlockRange(s.y, s.b, s.x, s.k, lo, hi)
	}
}

var shardPool = sync.Pool{New: func() any { return new(shardKernel) }}

func runSharded(n int, fill func(k *shardKernel)) {
	k := shardPool.Get().(*shardKernel)
	fill(k)
	par.Default().Run(n, k)
	*k = shardKernel{}
	shardPool.Put(k)
}

// applyAddRanger is the internal add-range face sharded ApplyAdd
// dispatches onto: fine[lo:hi] += (P coarse)[lo:hi].
type applyAddRanger interface {
	applyAddRange(fine, coarse []float64, lo, hi int)
}
