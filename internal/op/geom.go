package op

import (
	"fmt"
	"sort"

	"asyncmg/internal/par"
	"asyncmg/internal/sparse"
)

// GeomInterp is the matrix-free trilinear interpolant between a fine
// n×n×n grid and its 2h coarsening: coarse points sit at the odd fine
// indices (1, 3, …, 2·nc−1 per dimension, nc = n/2), odd fine points copy
// their coarse value (1-D weight 1) and even fine points average their
// up-to-two coarse neighbours (weights ½, with the boundary side dropped —
// the eliminated Dirichlet value is zero). A fine point's weight is the
// product (wi·wj)·wk of its per-dimension weights; all weights are exact
// powers of two, so prolongation and restriction round identically to the
// materialized CSR interpolant (GeomInterpCSR) and its transpose.
type GeomInterp struct {
	n, nc int
	nnz   int
}

// NewGeomInterp returns the trilinear interpolant for a fine n×n×n grid
// (n ≥ 3).
func NewGeomInterp(n int) *GeomInterp {
	if n < 3 {
		panic(fmt.Sprintf("op: GeomInterp needs n >= 3, got %d", n))
	}
	nc := n / 2
	// Entries per fine row factor over dimensions, so the total count is
	// the cube of the 1-D sum.
	s := 0
	for fi := 0; fi < n; fi++ {
		_, _, _, _, cnt := geomDim(fi, nc)
		s += cnt
	}
	return &GeomInterp{n: n, nc: nc, nnz: s * s * s}
}

// geomDim returns the coarse indices and 1-D weights a fine index fi
// interpolates from: one entry (weight 1) for odd fi, up to two entries
// (weight ½ each) for even fi with out-of-range sides dropped.
func geomDim(fi, nc int) (c0 int, w0 float64, c1 int, w1 float64, cnt int) {
	if fi&1 == 1 {
		return (fi - 1) / 2, 1.0, 0, 0, 1
	}
	if fi > 0 {
		c0, w0 = fi/2-1, 0.5
		cnt = 1
	}
	if fi/2 < nc {
		if cnt == 0 {
			c0, w0 = fi/2, 0.5
		} else {
			c1, w1 = fi/2, 0.5
		}
		cnt++
	}
	return c0, w0, c1, w1, cnt
}

// N is the fine grid edge length; NC the coarse edge length.
func (g *GeomInterp) N() int  { return g.n }
func (g *GeomInterp) NC() int { return g.nc }

func (g *GeomInterp) FineRows() int      { return g.n * g.n * g.n }
func (g *GeomInterp) CoarseRows() int    { return g.nc * g.nc * g.nc }
func (g *GeomInterp) NNZEquivalent() int { return g.nnz }

// Bytes is zero: the interpolant holds no matrix storage.
func (g *GeomInterp) Bytes() int { return 0 }

// ApplyRange computes fine[lo:hi] = (P coarse)[lo:hi]: for each fine row,
// the weighted sum over its (up to eight) coarse neighbours, columns
// visited in ascending order exactly as the CSR row stores them.
func (g *GeomInterp) ApplyRange(fine, coarse []float64, lo, hi int) {
	n, nc := g.n, g.nc
	nn := n * n
	i, j, k := lo/nn, (lo%nn)/n, lo%n
	for row := lo; row < hi; row++ {
		ci0, wi0, ci1, wi1, cntI := geomDim(i, nc)
		cj0, wj0, cj1, wj1, cntJ := geomDim(j, nc)
		ck0, wk0, ck1, wk1, cntK := geomDim(k, nc)
		cis := [2]int{ci0, ci1}
		wis := [2]float64{wi0, wi1}
		cjs := [2]int{cj0, cj1}
		wjs := [2]float64{wj0, wj1}
		cks := [2]int{ck0, ck1}
		wks := [2]float64{wk0, wk1}
		s := 0.0
		for a := 0; a < cntI; a++ {
			for b := 0; b < cntJ; b++ {
				base := (cis[a]*nc + cjs[b]) * nc
				wij := wis[a] * wjs[b]
				for c := 0; c < cntK; c++ {
					s += (wij * wks[c]) * coarse[base+cks[c]]
				}
			}
		}
		fine[row] = s
		if k++; k == n {
			k = 0
			if j++; j == n {
				j = 0
				i++
			}
		}
	}
}

// ApplyTRange computes coarse[lo:hi] = (Pᵀ fine)[lo:hi]: for each coarse
// row, the weighted sum over its 3×3×3 fine neighbourhood (centre at the
// coarse point's fine position), visited in ascending fine order exactly
// as the transposed CSR row stores it.
func (g *GeomInterp) ApplyTRange(coarse, fine []float64, lo, hi int) {
	n, nc := g.n, g.nc
	ncnc := nc * nc
	ci, cj, ck := lo/ncnc, (lo%ncnc)/nc, lo%nc
	for row := lo; row < hi; row++ {
		fi0, fj0, fk0 := 2*ci+1, 2*cj+1, 2*ck+1
		s := 0.0
		for di := -1; di <= 1; di++ {
			fi := fi0 + di
			if fi < 0 || fi >= n {
				continue
			}
			wi := 1.0
			if di != 0 {
				wi = 0.5
			}
			for dj := -1; dj <= 1; dj++ {
				fj := fj0 + dj
				if fj < 0 || fj >= n {
					continue
				}
				wj := 1.0
				if dj != 0 {
					wj = 0.5
				}
				wij := wi * wj
				base := (fi*n + fj) * n
				for dk := -1; dk <= 1; dk++ {
					fk := fk0 + dk
					if fk < 0 || fk >= n {
						continue
					}
					wk := 1.0
					if dk != 0 {
						wk = 0.5
					}
					s += (wij * wk) * fine[base+fk]
				}
			}
		}
		coarse[row] = s
		if ck++; ck == nc {
			ck = 0
			if cj++; cj == nc {
				cj = 0
				ci++
			}
		}
	}
}

// applyAddRange computes fine[lo:hi] += (P coarse)[lo:hi]: the row sum
// accumulates fully before the single add, matching MatVecAdd's
// `y[i] += s` association.
func (g *GeomInterp) applyAddRange(fine, coarse []float64, lo, hi int) {
	n, nc := g.n, g.nc
	nn := n * n
	i, j, k := lo/nn, (lo%nn)/n, lo%n
	for row := lo; row < hi; row++ {
		ci0, wi0, ci1, wi1, cntI := geomDim(i, nc)
		cj0, wj0, cj1, wj1, cntJ := geomDim(j, nc)
		ck0, wk0, ck1, wk1, cntK := geomDim(k, nc)
		cis := [2]int{ci0, ci1}
		wis := [2]float64{wi0, wi1}
		cjs := [2]int{cj0, cj1}
		wjs := [2]float64{wj0, wj1}
		cks := [2]int{ck0, ck1}
		wks := [2]float64{wk0, wk1}
		s := 0.0
		for a := 0; a < cntI; a++ {
			for b := 0; b < cntJ; b++ {
				base := (cis[a]*nc + cjs[b]) * nc
				wij := wis[a] * wjs[b]
				for c := 0; c < cntK; c++ {
					s += (wij * wks[c]) * coarse[base+cks[c]]
				}
			}
		}
		fine[row] += s
		if k++; k == n {
			k = 0
			if j++; j == n {
				j = 0
				i++
			}
		}
	}
}

func (g *GeomInterp) Apply(fine, coarse []float64) {
	if !par.Par(g.nnz) {
		g.ApplyRange(fine, coarse, 0, g.FineRows())
		return
	}
	runSharded(g.FineRows(), func(k *shardKernel) {
		k.mode, k.itp, k.y, k.x = modeInterpApply, g, fine, coarse
	})
}

func (g *GeomInterp) ApplyAdd(fine, coarse []float64) {
	if !par.Par(g.nnz) {
		g.applyAddRange(fine, coarse, 0, g.FineRows())
		return
	}
	runSharded(g.FineRows(), func(k *shardKernel) {
		k.mode, k.itp, k.y, k.x = modeInterpApplyAdd, g, fine, coarse
	})
}

func (g *GeomInterp) ApplyT(coarse, fine []float64) {
	if !par.Par(g.nnz) {
		g.ApplyTRange(coarse, fine, 0, g.CoarseRows())
		return
	}
	runSharded(g.CoarseRows(), func(k *shardKernel) {
		k.mode, k.itp, k.y, k.x = modeInterpApplyT, g, coarse, fine
	})
}

// CSR materializes the interpolant as a float64 CSR matrix (setup-time
// Galerkin products and tests; the solve path never calls it).
func (g *GeomInterp) CSR() *sparse.CSR {
	n, nc := g.n, g.nc
	rows := n * n * n
	p := &sparse.CSR{Rows: rows, Cols: nc * nc * nc, RowPtr: make([]int, rows+1)}
	p.ColIdx = make([]int, 0, g.nnz)
	p.Vals = make([]float64, 0, g.nnz)
	row := 0
	for i := 0; i < n; i++ {
		ci0, wi0, ci1, wi1, cntI := geomDim(i, nc)
		cis := [2]int{ci0, ci1}
		wis := [2]float64{wi0, wi1}
		for j := 0; j < n; j++ {
			cj0, wj0, cj1, wj1, cntJ := geomDim(j, nc)
			cjs := [2]int{cj0, cj1}
			wjs := [2]float64{wj0, wj1}
			for k := 0; k < n; k++ {
				ck0, wk0, ck1, wk1, cntK := geomDim(k, nc)
				cks := [2]int{ck0, ck1}
				wks := [2]float64{wk0, wk1}
				for a := 0; a < cntI; a++ {
					for b := 0; b < cntJ; b++ {
						base := (cis[a]*nc + cjs[b]) * nc
						wij := wis[a] * wjs[b]
						for c := 0; c < cntK; c++ {
							p.ColIdx = append(p.ColIdx, base+cks[c])
							p.Vals = append(p.Vals, wij*wks[c])
						}
					}
				}
				row++
				p.RowPtr[row] = len(p.Vals)
			}
		}
	}
	return p
}

// GeomInterpCSR materializes the trilinear interpolant for a fine n×n×n
// grid as CSR.
func GeomInterpCSR(n int) *sparse.CSR { return NewGeomInterp(n).CSR() }

// ---- matrix-free Galerkin coarsening ----

// rowEnumerator yields a row's (column, value) entries; the stencils
// implement it so setup-time sparse products can consume them without a
// materialized matrix.
type rowEnumerator interface {
	Rows() int
	enumerateRow(r int, fn func(col int, val float64))
}

func (s *Stencil7) enumerateRow(r int, fn func(col int, val float64)) {
	n := s.n
	nn := n * n
	i, j, k := r/nn, (r%nn)/n, r%n
	if i > 0 {
		fn(r-nn, lap7Off)
	}
	if j > 0 {
		fn(r-n, lap7Off)
	}
	if k > 0 {
		fn(r-1, lap7Off)
	}
	fn(r, lap7Diag)
	if k < n-1 {
		fn(r+1, lap7Off)
	}
	if j < n-1 {
		fn(r+n, lap7Off)
	}
	if i < n-1 {
		fn(r+nn, lap7Off)
	}
}

func (s *Stencil27) enumerateRow(r int, fn func(col int, val float64)) {
	n := s.n
	nn := n * n
	i, j, k := r/nn, (r%nn)/n, r%n
	for di := -1; di <= 1; di++ {
		ii := i + di
		if ii < 0 || ii >= n {
			continue
		}
		for dj := -1; dj <= 1; dj++ {
			jj := j + dj
			if jj < 0 || jj >= n {
				continue
			}
			base := (ii*n + jj) * n
			for dk := -1; dk <= 1; dk++ {
				kk := k + dk
				if kk < 0 || kk >= n {
					continue
				}
				c := base + kk
				if c == r {
					fn(c, lap27Diag)
				} else {
					fn(c, lap27Off)
				}
			}
		}
	}
}

// mulEnumCSR computes the sparse product A·P where A is given by row
// enumeration (a stencil) and P is CSR, using a generation-stamped
// marker/accumulator pair per row. Setup-time only.
func mulEnumCSR(a rowEnumerator, p *sparse.CSR) *sparse.CSR {
	rows := a.Rows()
	out := &sparse.CSR{Rows: rows, Cols: p.Cols, RowPtr: make([]int, rows+1)}
	marker := make([]int, p.Cols)
	acc := make([]float64, p.Cols)
	for i := range marker {
		marker[i] = -1
	}
	cols := make([]int, 0, 64)
	for i := 0; i < rows; i++ {
		cols = cols[:0]
		a.enumerateRow(i, func(j int, v float64) {
			for q := p.RowPtr[j]; q < p.RowPtr[j+1]; q++ {
				c := p.ColIdx[q]
				if marker[c] != i {
					marker[c] = i
					acc[c] = 0
					cols = append(cols, c)
				}
				acc[c] += v * p.Vals[q]
			}
		})
		sort.Ints(cols)
		for _, c := range cols {
			out.ColIdx = append(out.ColIdx, c)
			out.Vals = append(out.Vals, acc[c])
		}
		out.RowPtr[i+1] = len(out.Vals)
	}
	return out
}

// geomCoarsen builds the first (geometric) coarsening of a structured
// stencil operator: the trilinear interpolant P₀ and the Galerkin coarse
// matrix A₁ = P₀ᵀ (A P₀) as materialized CSR, without ever materializing
// the fine matrix. The algebraic AMG setup continues from A₁.
func geomCoarsen(a rowEnumerator, n int) (Interp, *sparse.CSR, error) {
	if n < 3 {
		return nil, nil, fmt.Errorf("op: grid edge %d too small to coarsen geometrically (need n >= 3)", n)
	}
	g := NewGeomInterp(n)
	p := g.CSR()
	ap := mulEnumCSR(a, p)
	a1 := sparse.MatMul(p.Transpose(), ap)
	return g, a1, nil
}

// Coarsen implements Coarsenable: the 2h trilinear interpolant and the
// Galerkin coarse matrix, matrix-free on the fine side.
func (s *Stencil7) Coarsen() (Interp, *sparse.CSR, error) { return geomCoarsen(s, s.n) }

// Coarsen implements Coarsenable.
func (s *Stencil27) Coarsen() (Interp, *sparse.CSR, error) { return geomCoarsen(s, s.n) }
