package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	var c *Counter
	c.Add(5) // nil-safe
	if c.Load() != 0 {
		t.Fatalf("nil counter loaded %d", c.Load())
	}
	c = &Counter{}
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}

	var g *Gauge
	g.Set(9) // nil-safe
	g = &Gauge{}
	g.Set(3)
	g.Add(4)
	g.Add(-5)
	if got := g.Load(); got != 2 {
		t.Fatalf("gauge = %d, want 2", got)
	}
	if got := g.Max(); got != 7 {
		t.Fatalf("gauge max = %d, want 7", got)
	}
}

func TestGridCounters(t *testing.T) {
	gc := NewGridCounters(3)
	gc.Inc(0)
	gc.Add(2, 10)
	gc.Add(-1, 99) // dropped
	gc.Add(3, 99)  // dropped
	if got := gc.Load(0); got != 1 {
		t.Fatalf("grid 0 = %d, want 1", got)
	}
	if got := gc.Total(); got != 11 {
		t.Fatalf("total = %d, want 11", got)
	}
	if snap := gc.Snapshot(nil); len(snap) != 3 || snap[2] != 10 {
		t.Fatalf("snapshot = %v", snap)
	}
	var nilGC *GridCounters
	nilGC.Inc(0)
	if nilGC.Len() != 0 || nilGC.Total() != 0 {
		t.Fatal("nil GridCounters not inert")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram([]int64{0, 1, 4})
	for _, v := range []int64{0, 0, 1, 3, 4, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 1, 2, 1} // <=0, <=1, <=4, overflow
	for i, c := range want {
		if s.Counts[i] != c {
			t.Fatalf("bucket %d = %d, want %d (snapshot %+v)", i, s.Counts[i], c, s)
		}
	}
	if s.Sum != 108 || s.Count != 6 {
		t.Fatalf("sum/count = %d/%d, want 108/6", s.Sum, s.Count)
	}
	if m := h.Mean(); m != 18 {
		t.Fatalf("mean = %v, want 18", m)
	}
	if q := s.Quantile(0.5); q != 1 {
		t.Fatalf("p50 = %d, want 1", q)
	}
	if q := s.Quantile(1.0); q != 5 { // overflow bucket reports bounds[last]+1
		t.Fatalf("p100 = %d, want 5", q)
	}
	var nilH *Histogram
	nilH.Observe(1)
	if nilH.Count() != 0 {
		t.Fatal("nil histogram not inert")
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-ascending bounds did not panic")
		}
	}()
	NewHistogram([]int64{3, 1})
}

func TestTracerRingAndDropped(t *testing.T) {
	tr := NewTracer(4)
	for i := 0; i < 6; i++ {
		tr.Record(EvCorrection, i, float64(i))
	}
	if got := tr.Len(); got != 4 {
		t.Fatalf("len = %d, want 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("dropped = %d, want 2", got)
	}
	ev := tr.Events()
	if len(ev) != 4 || ev[0].Seq != 2 || ev[3].Seq != 5 || ev[3].Grid != 5 {
		t.Fatalf("events = %+v", ev)
	}
	for i := 1; i < len(ev); i++ {
		if ev[i].When < ev[i-1].When {
			t.Fatalf("timeline not monotone: %+v", ev)
		}
	}
	var nilT *Tracer
	nilT.Record(EvCycle, 0, 0)
	if nilT.Len() != 0 || nilT.Events() != nil {
		t.Fatal("nil tracer not inert")
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("beta_total")
	c.Add(7)
	g := r.NewGauge("alpha_depth")
	g.Set(2)
	gc := r.NewGridCounters("grid_x_total", 2)
	gc.Add(1, 3)
	h := r.NewHistogram("stale", []int64{1, 2})
	h.Observe(2)
	r.NewCallback("zz_cb", func() int64 { return 42 })

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	wantLines := []string{
		"alpha_depth 2",
		"alpha_depth_max 2",
		"beta_total 7",
		`grid_x_total{grid="0"} 0`,
		`grid_x_total{grid="1"} 3`,
		`stale_bucket{le="1"} 0`,
		`stale_bucket{le="2"} 1`,
		`stale_bucket{le="+Inf"} 1`,
		"stale_sum 2",
		"stale_count 1",
		"zz_cb 42",
	}
	for _, l := range wantLines {
		if !strings.Contains(got, l+"\n") {
			t.Errorf("exposition missing line %q:\n%s", l, got)
		}
	}
	// Deterministic ordering: alpha before beta before grid_x.
	if strings.Index(got, "alpha_depth") > strings.Index(got, "beta_total") ||
		strings.Index(got, "beta_total") > strings.Index(got, "grid_x_total") {
		t.Errorf("exposition not sorted:\n%s", got)
	}
}

func TestObserverNilSafe(t *testing.T) {
	var o *Observer
	o.Relaxed(0, 1)
	o.Corrected(0, 3)
	o.CycleDone(0.5)
	o.ResidualSample(1, 0.1)
	o.IterationDone(0.2)
	o.TraceEvent(EvRecovery, -1, 0)
	if s := o.Snapshot(); s.Relaxations != nil || s.Events != nil {
		t.Fatalf("nil observer snapshot not zero: %+v", s)
	}
	if err := o.WriteText(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	if o.WithTrace(8) != nil {
		t.Fatal("nil WithTrace should return nil")
	}
}

func TestObserverEndToEnd(t *testing.T) {
	o := New(3).WithTrace(16)
	o.Relaxed(0, 2)
	o.Relaxed(2, 1)
	o.Corrected(0, 0)
	o.Corrected(1, 5)
	o.Corrected(1, -1) // unknown staleness: counted, not observed
	o.CycleDone(0.25)
	o.Drops.Add(3)

	s := o.Snapshot()
	if s.Relaxations[0] != 2 || s.Relaxations[2] != 1 {
		t.Fatalf("relaxations = %v", s.Relaxations)
	}
	if s.Corrections[0] != 1 || s.Corrections[1] != 2 {
		t.Fatalf("corrections = %v", s.Corrections)
	}
	if s.Staleness.Count != 2 || s.Staleness.Sum != 5 {
		t.Fatalf("staleness = %+v", s.Staleness)
	}
	if s.Faults["fault_drops_total"] != 3 {
		t.Fatalf("faults = %v", s.Faults)
	}
	if len(s.Events) != 4 { // 3 corrections + 1 cycle
		t.Fatalf("events = %+v", s.Events)
	}

	var buf bytes.Buffer
	if err := o.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{
		`grid_relaxations_total{grid="0"} 2`,
		`grid_corrections_total{grid="1"} 2`,
		"staleness_sweeps_count 2",
		"fault_drops_total 3",
		"pool_dispatches_total",
		"trace 0 ",
	} {
		if !strings.Contains(buf.String(), l) {
			t.Errorf("exposition missing %q:\n%s", l, buf.String())
		}
	}
}

// TestObserverConcurrent hammers one observer from many goroutines; run
// under -race this is the subsystem's data-race certification.
func TestObserverConcurrent(t *testing.T) {
	o := New(4).WithTrace(64)
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				o.Relaxed(w%4, 1)
				o.Corrected(w%4, int64(i%10))
				if i%50 == 0 {
					_ = o.Snapshot()
					_ = o.Registry.WriteText(&bytes.Buffer{})
				}
			}
		}(w)
	}
	wg.Wait()
	s := o.Snapshot()
	var relax, corr int64
	for k := range s.Relaxations {
		relax += s.Relaxations[k]
		corr += s.Corrections[k]
	}
	if relax != workers*per || corr != workers*per {
		t.Fatalf("lost updates: relax=%d corr=%d, want %d", relax, corr, workers*per)
	}
	if s.Staleness.Count != workers*per {
		t.Fatalf("staleness count = %d, want %d", s.Staleness.Count, workers*per)
	}
}

// TestRecordingZeroAllocs pins the tentpole guarantee: recording on the
// hot path performs no heap allocation.
func TestRecordingZeroAllocs(t *testing.T) {
	o := New(4).WithTrace(32)
	if allocs := testing.AllocsPerRun(100, func() {
		o.Relaxed(1, 1)
		o.Corrected(2, 3)
		o.CycleDone(0.5)
		o.TraceEvent(EvRecovery, -1, 1)
	}); allocs != 0 {
		t.Fatalf("recording allocates %v per run, want 0", allocs)
	}
	var nilObs *Observer
	if allocs := testing.AllocsPerRun(100, func() {
		nilObs.Relaxed(1, 1)
		nilObs.Corrected(2, 3)
	}); allocs != 0 {
		t.Fatalf("nil observer allocates %v per run, want 0", allocs)
	}
}
