// Package obs is the solver observability layer: allocation-free metric
// instruments (atomic counters and gauges, cache-line-padded per-grid
// counter vectors, fixed-bucket histograms), an optional bounded
// ring-buffer event tracer, a named Registry with a plain-text exposition
// writer, and the Observer type that the cycle engine, the asynchronous
// goroutine teams, the distributed-memory simulation, the §III models,
// the par worker pool and the Krylov solvers all report into.
//
// Everything the paper's evaluation plots — per-grid relaxation counts
// (Figures 4-6 x-axes), correction staleness (the read delay δ of the
// semi/full-async models), residual timelines (Figures 1-3) — is exposed
// on a live run through one Observer.
//
// Design rules:
//
//   - Recording on the solver hot path never allocates: counters and
//     histograms are plain atomic adds, per-grid cells are padded to a
//     cache line so teams on different grids never false-share, and the
//     tracer writes into a preallocated ring under a short mutex.
//   - Every recording method is safe on a nil receiver, so solvers thread
//     one *Observer unconditionally and a nil observer costs one branch.
//   - Reads (Snapshot, WriteText) are concurrent-safe with writers; they
//     observe each instrument atomically but the set as a whole is only
//     loosely consistent, as live metrics always are.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// cell is a cache-line-padded atomic counter: per-grid instruments give
// each grid its own cell so concurrent teams never contend or false-share.
type cell struct {
	v atomic.Int64
	_ [56]byte
}

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are nil-safe no-ops.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c != nil {
		c.v.Add(d)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current count (0 for a nil counter).
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an instantaneous atomic value that can move both ways and
// tracks its high-water mark. The zero value is ready; methods are
// nil-safe.
type Gauge struct {
	v, max atomic.Int64
}

// Set stores v as the current value (the high-water mark keeps its max).
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
	g.bumpMax(v)
}

// Add moves the gauge by d and returns the new value.
func (g *Gauge) Add(d int64) int64 {
	if g == nil {
		return 0
	}
	v := g.v.Add(d)
	g.bumpMax(v)
	return v
}

func (g *Gauge) bumpMax(v int64) {
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Load returns the current value.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Max returns the high-water mark.
func (g *Gauge) Max() int64 {
	if g == nil {
		return 0
	}
	return g.max.Load()
}

// GridCounters is a fixed-length vector of per-grid counters, one padded
// cache line per grid. Methods are nil-safe and ignore out-of-range grid
// indices (a negative grid index means "not grid-attributed" and is
// dropped rather than misfiled).
type GridCounters struct {
	cells []cell
}

// NewGridCounters returns a counter vector for `grids` grids.
func NewGridCounters(grids int) *GridCounters {
	if grids < 0 {
		grids = 0
	}
	return &GridCounters{cells: make([]cell, grids)}
}

// Add increments grid k's counter by d.
func (g *GridCounters) Add(k int, d int64) {
	if g == nil || k < 0 || k >= len(g.cells) {
		return
	}
	g.cells[k].v.Add(d)
}

// Inc increments grid k's counter by one.
func (g *GridCounters) Inc(k int) { g.Add(k, 1) }

// Load returns grid k's count.
func (g *GridCounters) Load(k int) int64 {
	if g == nil || k < 0 || k >= len(g.cells) {
		return 0
	}
	return g.cells[k].v.Load()
}

// Len returns the number of grids.
func (g *GridCounters) Len() int {
	if g == nil {
		return 0
	}
	return len(g.cells)
}

// Total returns the sum over all grids.
func (g *GridCounters) Total() int64 {
	var t int64
	for k := 0; k < g.Len(); k++ {
		t += g.Load(k)
	}
	return t
}

// Snapshot appends the per-grid counts to dst and returns it.
func (g *GridCounters) Snapshot(dst []int64) []int64 {
	for k := 0; k < g.Len(); k++ {
		dst = append(dst, g.Load(k))
	}
	return dst
}

// GridGauges is a fixed-length vector of per-grid gauges, one padded
// cache line per grid (no high-water mark: damping factors move both
// ways and the instantaneous value is the signal). Methods are nil-safe
// and ignore out-of-range grid indices.
type GridGauges struct {
	cells []cell
}

// NewGridGauges returns a gauge vector for `grids` grids.
func NewGridGauges(grids int) *GridGauges {
	if grids < 0 {
		grids = 0
	}
	return &GridGauges{cells: make([]cell, grids)}
}

// Set stores v as grid k's current value.
func (g *GridGauges) Set(k int, v int64) {
	if g == nil || k < 0 || k >= len(g.cells) {
		return
	}
	g.cells[k].v.Store(v)
}

// Load returns grid k's current value.
func (g *GridGauges) Load(k int) int64 {
	if g == nil || k < 0 || k >= len(g.cells) {
		return 0
	}
	return g.cells[k].v.Load()
}

// Len returns the number of grids.
func (g *GridGauges) Len() int {
	if g == nil {
		return 0
	}
	return len(g.cells)
}

// Histogram is a fixed-bucket histogram of int64 observations (counts,
// ages in sweeps, queue depths). Bucket b counts observations <=
// Bounds[b]; one implicit overflow bucket counts the rest. Observe is a
// single atomic add into a padded cell plus one into the sum, so
// concurrent teams do not contend on a lock.
type Histogram struct {
	bounds  []int64
	buckets []cell
	sum     atomic.Int64
	count   atomic.Int64
}

// DefaultStalenessBounds is the bucket layout used for correction
// staleness (age in sweeps): exponential, 0..128 sweeps plus overflow.
func DefaultStalenessBounds() []int64 { return []int64{0, 1, 2, 4, 8, 16, 32, 64, 128} }

// NewHistogram builds a histogram with the given ascending bucket upper
// bounds (plus an implicit +Inf bucket).
func NewHistogram(bounds []int64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("obs: histogram bounds must ascend, got %v", bounds))
		}
	}
	b := append([]int64(nil), bounds...)
	return &Histogram{bounds: b, buckets: make([]cell, len(b)+1)}
}

// Observe records one observation. Nil-safe, allocation-free.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	// Branch-light linear scan: staleness histograms have ~10 buckets and
	// observations cluster in the first few, so a scan beats binary search.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].v.Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return float64(h.Sum()) / float64(n)
}

// MergeSnapshot adds another histogram's snapshot into h. The snapshot
// must have the same bucket layout (same bounds length); mismatched
// layouts are ignored. Nil-safe.
func (h *Histogram) MergeSnapshot(s HistSnapshot) {
	if h == nil || len(s.Counts) != len(h.buckets) {
		return
	}
	for i, c := range s.Counts {
		h.buckets[i].v.Add(c)
	}
	h.sum.Add(s.Sum)
	h.count.Add(s.Count)
}

// HistSnapshot is a point-in-time copy of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds; Counts has len(Bounds)+1
	// entries, the last being the overflow bucket.
	Bounds []int64
	Counts []int64
	Sum    int64
	Count  int64
}

// Snapshot copies the histogram's current state.
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]int64(nil), h.bounds...),
		Counts: make([]int64, len(h.buckets)),
		Sum:    h.sum.Load(),
		Count:  h.count.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].v.Load()
	}
	return s
}

// Quantile returns an upper bound for the q-quantile (0 < q <= 1) of the
// recorded observations: the smallest bucket bound containing it.
func (s HistSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, c := range s.Counts {
		cum += c
		if cum >= target {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Bounds[len(s.Bounds)-1] + 1 // overflow bucket
		}
	}
	return s.Bounds[len(s.Bounds)-1] + 1
}

// ---- Registry ----

// metric is one named exposition entry.
type metric struct {
	name string
	// one of:
	c    *Counter
	g    *Gauge
	gc   *GridCounters
	gg   *GridGauges
	h    *Histogram
	call func() int64
}

// Registry is a named collection of instruments with a deterministic
// plain-text exposition writer. Registration is mutex-guarded (setup
// path); recording goes directly through the instruments (hot path).
type Registry struct {
	mu      sync.Mutex
	metrics []metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(m metric) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.metrics = append(r.metrics, m)
	r.mu.Unlock()
}

// NewCounter registers and returns a counter.
func (r *Registry) NewCounter(name string) *Counter {
	c := &Counter{}
	r.add(metric{name: name, c: c})
	return c
}

// NewGauge registers and returns a gauge (exposed as <name> and
// <name>_max).
func (r *Registry) NewGauge(name string) *Gauge {
	g := &Gauge{}
	r.add(metric{name: name, g: g})
	return g
}

// NewGridCounters registers and returns a per-grid counter vector
// (exposed as <name>{grid="k"}).
func (r *Registry) NewGridCounters(name string, grids int) *GridCounters {
	gc := NewGridCounters(grids)
	r.add(metric{name: name, gc: gc})
	return gc
}

// NewGridGauges registers and returns a per-grid gauge vector (exposed
// as <name>{grid="k"}).
func (r *Registry) NewGridGauges(name string, grids int) *GridGauges {
	gg := NewGridGauges(grids)
	r.add(metric{name: name, gg: gg})
	return gg
}

// NewHistogram registers and returns a histogram (exposed as
// <name>_bucket{le="..."} / _sum / _count).
func (r *Registry) NewHistogram(name string, bounds []int64) *Histogram {
	h := NewHistogram(bounds)
	r.add(metric{name: name, h: h})
	return h
}

// NewCallback registers a read-only metric computed at exposition time
// (used to fold external atomic state — e.g. the par worker-pool stats —
// into one registry).
func (r *Registry) NewCallback(name string, f func() int64) {
	r.add(metric{name: name, call: f})
}

// WriteText writes every registered metric in a stable, sorted,
// Prometheus-style plain-text format:
//
//	name 42
//	name{grid="0"} 7
//	name_bucket{le="4"} 3
//	name_bucket{le="+Inf"} 5
//	name_sum 12
//	name_count 5
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.SliceStable(ms, func(i, j int) bool { return ms[i].name < ms[j].name })
	for _, m := range ms {
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.c.Load())
		case m.g != nil:
			if _, err = fmt.Fprintf(w, "%s %d\n", m.name, m.g.Load()); err == nil {
				_, err = fmt.Fprintf(w, "%s_max %d\n", m.name, m.g.Max())
			}
		case m.gc != nil:
			for k := 0; k < m.gc.Len(); k++ {
				if _, err = fmt.Fprintf(w, "%s{grid=%q} %d\n", m.name, strconv.Itoa(k), m.gc.Load(k)); err != nil {
					break
				}
			}
		case m.gg != nil:
			for k := 0; k < m.gg.Len(); k++ {
				if _, err = fmt.Fprintf(w, "%s{grid=%q} %d\n", m.name, strconv.Itoa(k), m.gg.Load(k)); err != nil {
					break
				}
			}
		case m.h != nil:
			s := m.h.Snapshot()
			var cum int64
			for i, c := range s.Counts {
				cum += c
				le := "+Inf"
				if i < len(s.Bounds) {
					le = strconv.FormatInt(s.Bounds[i], 10)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", m.name, le, cum); err != nil {
					break
				}
			}
			if err == nil {
				_, err = fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", m.name, s.Sum, m.name, s.Count)
			}
		case m.call != nil:
			_, err = fmt.Fprintf(w, "%s %d\n", m.name, m.call())
		}
		if err != nil {
			return err
		}
	}
	return nil
}
