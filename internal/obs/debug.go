package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"runtime/trace"
)

// ServeDebug starts an HTTP server on addr exposing the observer's
// metrics at /metrics (exposition format) and the standard pprof profile
// endpoints under /debug/pprof/. It returns the bound address (useful
// with a ":0" addr) after the listener is live; the server itself runs on
// a background goroutine for the life of the process. obs may be nil
// (profiling endpoints only).
func ServeDebug(addr string, o *Observer) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := o.WriteText(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("obs: debug listener: %w", err)
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}

// StartTrace begins a runtime execution trace into the named file and
// returns a stop function that ends the trace and closes the file. An
// empty path is a no-op (the returned stop is still non-nil).
func StartTrace(path string) (stop func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("obs: trace file: %w", err)
	}
	if err := trace.Start(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: trace start: %w", err)
	}
	return func() error {
		trace.Stop()
		return f.Close()
	}, nil
}

// WriteMetricsFile writes the observer's exposition text to path
// (truncating). A nil observer or empty path is a no-op.
func WriteMetricsFile(path string, o *Observer) error {
	if o == nil || path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: metrics file: %w", err)
	}
	if err := o.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
