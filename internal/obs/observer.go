package obs

import (
	"io"
	"time"

	"asyncmg/internal/par"
)

// Observer is the per-solve metrics sink the solvers report into. Every
// recording method is safe on a nil receiver, so the engine, the async
// teams, the distmem owner/workers, the §III models and the Krylov loop
// thread one *Observer unconditionally; a nil observer costs one branch
// per event.
//
// The well-known instruments are exported fields for allocation-free hot
// path access; they are also registered (together with the par
// worker-pool callbacks) in Registry, so one WriteText call exposes the
// whole signal catalog.
type Observer struct {
	// Registry holds every instrument below plus the worker-pool
	// callbacks, for text exposition.
	Registry *Registry

	// Relaxations counts smoothing sweeps per grid (level): the x-axis
	// quantity of the paper's Figures 4-6 ("relative residual vs
	// relaxations"). One coarse exact solve counts as one relaxation on
	// the coarsest grid.
	Relaxations *GridCounters
	// Corrections counts applied corrections per grid (the paper's
	// "Corrects" column).
	Corrections *GridCounters
	// Staleness is the age, in globally applied corrections (sweeps), of
	// the residual information each applied correction was computed from —
	// the empirical read delay δ of the §III models.
	Staleness *Histogram
	// CycleResiduals is the count of residual-norm samples recorded on
	// the trace (synchronous cycles, CG iterations, distmem applies).
	CycleResiduals *Counter

	// Omega is each grid's current damping factor ω_k in milli-units
	// (1000 = undamped), set by the async adaptive-damping controller.
	Omega *GridGauges
	// DampTightens / DampRelaxes count controller events per grid: a
	// tighten lowers ω_k (stale reads or degrading residual history), a
	// relax raises it back toward 1 as reads freshen.
	DampTightens, DampRelaxes *GridCounters
	// Rollbacks counts asynchronous solves whose iterate was discarded
	// by the rollback-last divergence defense.
	Rollbacks *Counter

	// Faults unifies the fault/recovery counters of the distmem solver
	// under the registry (mirrors of distmem.Result's counters).
	Drops, Duplicates, Crashes, Respawns   *Counter
	WatchdogFires, DivergenceResets        *Counter
	Discarded, RetiredGrids, StaleSnapshot *Counter

	// SetupBuilds counts AMG setup phases recorded through SetupDone; the
	// *NS counters accumulate the per-stage wall time (nanoseconds) of
	// those setups, matching amg.SetupStats stage for stage (the cached
	// Pᵀ build and the Galerkin triple product are separate stages).
	SetupBuilds                    *Counter
	SetupTotalNS, SetupStrengthNS  *Counter
	SetupCoarsenNS, SetupInterpNS  *Counter
	SetupTransposeNS, SetupRAPNS   *Counter
	SetupFactorNS, SetupSparsifyNS *Counter
	// Sparsification-guard outcomes recorded through Sparsified: levels
	// that kept a sparsified operator, total nonzeros dropped from coarse
	// operators, and levels the convergence guard reverted.
	SparsifyLevels, SparsifyDropped *Counter
	SparsifyFallbacks               *Counter

	// SentNNZ accumulates, per grid, the nonzero payload volume of
	// correction messages the distmem workers sent to the owner — the
	// message-volume signal coarse-operator sparsification shrinks.
	SentNNZ *GridCounters

	// Krylov-subsystem counters (package krylov): iterations across all
	// solver kinds, completed PCG and FGMRES solves, solves that reached
	// tolerance, and breakdowns (non-SPD operator or preconditioner
	// detected mid-solve). Zero-valued for pure cycling workloads.
	KrylovIterations                   *Counter
	KrylovPCGSolves, KrylovFGMRESolves *Counter
	KrylovConverged, KrylovBreakdowns  *Counter

	// Serving counters of the solver service (package serve): hierarchy
	// setup-cache traffic, batched multi-RHS solve sizes, admission-queue
	// depth, and requests rejected by admission control (backpressure or
	// drain). Zero-valued and harmless for non-serving solves.
	CacheHits, CacheMisses, CacheEvictions *Counter
	BatchSizes                             *Histogram
	QueueDepth                             *Gauge
	Rejected, Requests                     *Counter
	// Warms counts replication warm requests a node served (package
	// serve's /internal/warm — the pull side of hierarchy replication).
	Warms *Counter

	// Cluster routing counters (package cluster): solves forwarded to
	// nodes, 429 retries honoring Retry-After, hedged requests launched
	// against a replica (and the hedges that won), failovers to the next
	// owner after a node failure, full-partition fallbacks to the local
	// engine, per-node circuit-breaker transitions, ring rebuilds driven
	// by membership changes, replica warm pushes, and failed health
	// probes. Zero-valued and harmless outside a cluster router.
	RouteForwards, RouteRetries         *Counter
	RouteHedges, RouteHedgeWins         *Counter
	RouteFailovers, RouteLocalFallbacks *Counter
	BreakerOpens, BreakerRejects        *Counter
	RingRebuilds, ReplicaWarms          *Counter
	ProbeFailures                       *Counter

	// Trace is the optional bounded event timeline (nil unless the
	// observer was built WithTrace).
	Trace *Tracer
}

// DefaultBatchBounds is the bucket layout for batched solve sizes
// (requests coalesced per block solve).
func DefaultBatchBounds() []int64 { return []int64{1, 2, 4, 8, 16, 32} }

// New builds an observer for a solve over `grids` grids (hierarchy
// levels). Pass the hierarchy depth; out-of-range grid indices are
// dropped, so an over-estimate is safe.
func New(grids int) *Observer {
	r := NewRegistry()
	o := &Observer{
		Registry:            r,
		Relaxations:         r.NewGridCounters("grid_relaxations_total", grids),
		Corrections:         r.NewGridCounters("grid_corrections_total", grids),
		Staleness:           r.NewHistogram("staleness_sweeps", DefaultStalenessBounds()),
		CycleResiduals:      r.NewCounter("residual_samples_total"),
		Omega:               r.NewGridGauges("damping_omega_milli", grids),
		DampTightens:        r.NewGridCounters("damping_tightens_total", grids),
		DampRelaxes:         r.NewGridCounters("damping_relaxes_total", grids),
		Rollbacks:           r.NewCounter("async_rollbacks_total"),
		Drops:               r.NewCounter("fault_drops_total"),
		Duplicates:          r.NewCounter("fault_duplicates_total"),
		Crashes:             r.NewCounter("fault_crashes_total"),
		Respawns:            r.NewCounter("recovery_respawns_total"),
		WatchdogFires:       r.NewCounter("recovery_watchdog_fires_total"),
		DivergenceResets:    r.NewCounter("recovery_divergence_resets_total"),
		Discarded:           r.NewCounter("recovery_discarded_total"),
		RetiredGrids:        r.NewCounter("recovery_retired_grids_total"),
		StaleSnapshot:       r.NewCounter("stale_snapshot_drops_total"),
		SetupBuilds:         r.NewCounter("setup_builds_total"),
		SetupTotalNS:        r.NewCounter("setup_total_ns_total"),
		SetupStrengthNS:     r.NewCounter("setup_strength_ns_total"),
		SetupCoarsenNS:      r.NewCounter("setup_coarsen_ns_total"),
		SetupInterpNS:       r.NewCounter("setup_interp_ns_total"),
		SetupTransposeNS:    r.NewCounter("setup_transpose_ns_total"),
		SetupRAPNS:          r.NewCounter("setup_rap_ns_total"),
		SetupFactorNS:       r.NewCounter("setup_factor_ns_total"),
		SetupSparsifyNS:     r.NewCounter("setup_sparsify_ns_total"),
		SparsifyLevels:      r.NewCounter("sparsify_levels_total"),
		SparsifyDropped:     r.NewCounter("sparsify_dropped_nnz_total"),
		SparsifyFallbacks:   r.NewCounter("sparsify_fallbacks_total"),
		SentNNZ:             r.NewGridCounters("distmem_sent_nnz_total", grids),
		KrylovIterations:    r.NewCounter("krylov_iterations_total"),
		KrylovPCGSolves:     r.NewCounter("krylov_pcg_solves_total"),
		KrylovFGMRESolves:   r.NewCounter("krylov_fgmres_solves_total"),
		KrylovConverged:     r.NewCounter("krylov_converged_total"),
		KrylovBreakdowns:    r.NewCounter("krylov_breakdowns_total"),
		CacheHits:           r.NewCounter("serve_cache_hits_total"),
		CacheMisses:         r.NewCounter("serve_cache_misses_total"),
		CacheEvictions:      r.NewCounter("serve_cache_evictions_total"),
		BatchSizes:          r.NewHistogram("serve_batch_size", DefaultBatchBounds()),
		QueueDepth:          r.NewGauge("serve_queue_depth"),
		Rejected:            r.NewCounter("serve_rejected_total"),
		Requests:            r.NewCounter("serve_requests_total"),
		Warms:               r.NewCounter("serve_warms_total"),
		RouteForwards:       r.NewCounter("cluster_forwards_total"),
		RouteRetries:        r.NewCounter("cluster_retries_total"),
		RouteHedges:         r.NewCounter("cluster_hedges_total"),
		RouteHedgeWins:      r.NewCounter("cluster_hedge_wins_total"),
		RouteFailovers:      r.NewCounter("cluster_failovers_total"),
		RouteLocalFallbacks: r.NewCounter("cluster_local_fallbacks_total"),
		BreakerOpens:        r.NewCounter("cluster_breaker_opens_total"),
		BreakerRejects:      r.NewCounter("cluster_breaker_rejects_total"),
		RingRebuilds:        r.NewCounter("cluster_ring_rebuilds_total"),
		ReplicaWarms:        r.NewCounter("cluster_replica_warms_total"),
		ProbeFailures:       r.NewCounter("cluster_probe_failures_total"),
	}
	// Worker-pool signals: callbacks folding par's package-level atomics
	// into this registry at exposition time.
	r.NewCallback("pool_dispatches_total", func() int64 { return par.ReadStats().Dispatches })
	r.NewCallback("pool_serial_kernels_total", func() int64 { return par.ReadStats().Serial })
	r.NewCallback("pool_queue_depth", func() int64 { return par.ReadStats().QueueDepth })
	r.NewCallback("pool_queue_depth_max", func() int64 { return par.ReadStats().MaxQueueDepth })
	r.NewCallback("pool_busy_ns_total", func() int64 { return par.ReadStats().BusyNS })
	return o
}

// WithTrace attaches a bounded event tracer retaining the last `capacity`
// events and returns the observer for chaining.
func (o *Observer) WithTrace(capacity int) *Observer {
	if o != nil {
		o.Trace = NewTracer(capacity)
	}
	return o
}

// ---- nil-safe recording methods (the solver-facing API) ----

// Relaxed records `sweeps` smoothing sweeps on grid k.
func (o *Observer) Relaxed(k int, sweeps int64) {
	if o == nil {
		return
	}
	o.Relaxations.Add(k, sweeps)
}

// Corrected records one applied correction of grid k with the given
// staleness (age of its residual information in globally applied
// corrections; pass -1 when unknown, which skips the histogram).
func (o *Observer) Corrected(k int, staleness int64) {
	if o == nil {
		return
	}
	o.Corrections.Inc(k)
	if staleness >= 0 {
		o.Staleness.Observe(staleness)
	}
	o.Trace.Record(EvCorrection, k, float64(staleness))
}

// OmegaSet records grid k's current damping factor (stored in
// milli-units so the integer gauge keeps three decimals).
func (o *Observer) OmegaSet(k int, omega float64) {
	if o == nil {
		return
	}
	o.Omega.Set(k, int64(omega*1000))
}

// DampTightened records one controller tighten of grid k's ω (newOmega
// is the factor after the move).
func (o *Observer) DampTightened(k int, newOmega float64) {
	if o == nil {
		return
	}
	o.DampTightens.Inc(k)
	o.Omega.Set(k, int64(newOmega*1000))
	o.Trace.Record(EvDamp, k, newOmega)
}

// DampRelaxed records one controller relax of grid k's ω back toward 1.
func (o *Observer) DampRelaxed(k int, newOmega float64) {
	if o == nil {
		return
	}
	o.DampRelaxes.Inc(k)
	o.Omega.Set(k, int64(newOmega*1000))
	o.Trace.Record(EvDamp, k, newOmega)
}

// RolledBack records one rollback-last iterate discard (value is the
// residual measure that triggered it, for the timeline).
func (o *Observer) RolledBack(value float64) {
	if o == nil {
		return
	}
	o.Rollbacks.Inc()
	o.Trace.Record(EvRollback, -1, value)
}

// CycleDone records one completed V-cycle with the post-cycle relative
// residual (NaN when not computed).
func (o *Observer) CycleDone(relres float64) {
	if o == nil {
		return
	}
	o.CycleResiduals.Inc()
	o.Trace.Record(EvCycle, -1, relres)
}

// ResidualSample records a residual-norm observation on the timeline.
func (o *Observer) ResidualSample(grid int, relres float64) {
	if o == nil {
		return
	}
	o.CycleResiduals.Inc()
	o.Trace.Record(EvResidual, grid, relres)
}

// IterationDone records one Krylov iteration with its relative residual.
func (o *Observer) IterationDone(relres float64) {
	if o == nil {
		return
	}
	o.CycleResiduals.Inc()
	o.KrylovIterations.Inc()
	o.Trace.Record(EvIteration, -1, relres)
}

// KrylovSolved records one finished Krylov solve: kind is "pcg" or
// "fgmres", converged reports whether it reached tolerance.
func (o *Observer) KrylovSolved(kind string, converged bool) {
	if o == nil {
		return
	}
	switch kind {
	case "pcg":
		o.KrylovPCGSolves.Inc()
	case "fgmres":
		o.KrylovFGMRESolves.Inc()
	}
	if converged {
		o.KrylovConverged.Inc()
	}
}

// KrylovBreakdown records one Krylov breakdown (a non-positive or
// non-finite inner product: the operator or preconditioner is not SPD).
func (o *Observer) KrylovBreakdown() {
	if o == nil {
		return
	}
	o.KrylovBreakdowns.Inc()
}

// SetupDone records one completed AMG setup phase with its per-stage
// wall times (the amg.SetupStats breakdown; pass zero for stages that
// did not run). Nil-safe like every recording method.
func (o *Observer) SetupDone(total, strength, coarsen, interp, transpose, rap, factor, sparsify time.Duration) {
	if o == nil {
		return
	}
	o.SetupBuilds.Inc()
	o.SetupTotalNS.Add(int64(total))
	o.SetupStrengthNS.Add(int64(strength))
	o.SetupCoarsenNS.Add(int64(coarsen))
	o.SetupInterpNS.Add(int64(interp))
	o.SetupTransposeNS.Add(int64(transpose))
	o.SetupRAPNS.Add(int64(rap))
	o.SetupFactorNS.Add(int64(factor))
	o.SetupSparsifyNS.Add(int64(sparsify))
}

// Sparsified records the outcome of one setup's coarse-operator
// sparsification: levels that kept their sparsified operator, total
// nonzeros dropped, and levels the convergence guard reverted. Nil-safe.
func (o *Observer) Sparsified(levels, droppedNNZ, fallbacks int64) {
	if o == nil {
		return
	}
	o.SparsifyLevels.Add(levels)
	o.SparsifyDropped.Add(droppedNNZ)
	o.SparsifyFallbacks.Add(fallbacks)
}

// CorrectionPayload records the nonzero payload volume of one correction
// message for grid k arriving at the distmem owner. Nil-safe.
func (o *Observer) CorrectionPayload(k int, nnz int64) {
	if o == nil {
		return
	}
	o.SentNNZ.Add(k, nnz)
}

// TraceEvent records an arbitrary event on the timeline (no counter).
func (o *Observer) TraceEvent(kind EventKind, grid int, value float64) {
	if o == nil {
		return
	}
	o.Trace.Record(kind, grid, value)
}

// Merge folds another observer's snapshot into o: per-grid relaxation
// and correction counts are added index-aligned (extra grids in the
// snapshot are dropped), the staleness histogram is merged bucket-wise
// (ignored on bucket-layout mismatch), and the fault/recovery counters
// are added by name. The trace timeline and pool gauges are not merged
// (pool stats are process-global already). Use it to aggregate
// per-experiment observers into one exposition registry. Nil-safe.
func (o *Observer) Merge(s Snapshot) {
	if o == nil {
		return
	}
	for k, v := range s.Relaxations {
		o.Relaxations.Add(k, v)
	}
	for k, v := range s.Corrections {
		o.Corrections.Add(k, v)
	}
	o.Staleness.MergeSnapshot(s.Staleness)
	for name, v := range s.Faults {
		if c := o.faultCounter(name); c != nil {
			c.Add(v)
		}
	}
}

// faultCounter maps an exposition name to the matching counter field.
func (o *Observer) faultCounter(name string) *Counter {
	switch name {
	case "fault_drops_total":
		return o.Drops
	case "fault_duplicates_total":
		return o.Duplicates
	case "fault_crashes_total":
		return o.Crashes
	case "recovery_respawns_total":
		return o.Respawns
	case "recovery_watchdog_fires_total":
		return o.WatchdogFires
	case "recovery_divergence_resets_total":
		return o.DivergenceResets
	case "recovery_discarded_total":
		return o.Discarded
	case "recovery_retired_grids_total":
		return o.RetiredGrids
	case "stale_snapshot_drops_total":
		return o.StaleSnapshot
	}
	return nil
}

// ---- snapshots and exposition ----

// Snapshot is a point-in-time copy of an observer's solver signals.
type Snapshot struct {
	// Relaxations[k] / Corrections[k] are grid k's counts.
	Relaxations, Corrections []int64
	// Staleness is the correction-staleness histogram.
	Staleness HistSnapshot
	// Pool is the worker-pool state.
	Pool par.Stats
	// Faults are the unified fault/recovery counters, keyed as exposed
	// (fault_drops_total, recovery_respawns_total, ...).
	Faults map[string]int64
	// Events is the retained trace timeline (nil without tracing);
	// EventsDropped counts ring overwrites.
	Events        []Event
	EventsDropped uint64
}

// Snapshot copies the observer's current state. Safe to call while a
// solve is running (loosely consistent across instruments). Returns the
// zero Snapshot for a nil observer.
func (o *Observer) Snapshot() Snapshot {
	if o == nil {
		return Snapshot{}
	}
	return Snapshot{
		Relaxations: o.Relaxations.Snapshot(nil),
		Corrections: o.Corrections.Snapshot(nil),
		Staleness:   o.Staleness.Snapshot(),
		Pool:        par.ReadStats(),
		Faults: map[string]int64{
			"fault_drops_total":                o.Drops.Load(),
			"fault_duplicates_total":           o.Duplicates.Load(),
			"fault_crashes_total":              o.Crashes.Load(),
			"recovery_respawns_total":          o.Respawns.Load(),
			"recovery_watchdog_fires_total":    o.WatchdogFires.Load(),
			"recovery_divergence_resets_total": o.DivergenceResets.Load(),
			"recovery_discarded_total":         o.Discarded.Load(),
			"recovery_retired_grids_total":     o.RetiredGrids.Load(),
			"stale_snapshot_drops_total":       o.StaleSnapshot.Load(),
		},
		Events:        o.Trace.Events(),
		EventsDropped: o.Trace.Dropped(),
	}
}

// WriteText writes the full registry in exposition format, followed by
// the trace timeline when tracing is enabled. Nil-safe.
func (o *Observer) WriteText(w io.Writer) error {
	if o == nil {
		return nil
	}
	if err := o.Registry.WriteText(w); err != nil {
		return err
	}
	return o.Trace.WriteText(w)
}
