package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// EventKind tags a tracer event.
type EventKind uint8

const (
	// EvCycle marks one completed V-cycle of a synchronous solve; Value
	// is the relative residual after the cycle (when recorded).
	EvCycle EventKind = iota + 1
	// EvCorrection marks one applied grid correction; Grid is the grid,
	// Value is the correction's staleness in sweeps (or -1 if unknown).
	EvCorrection
	// EvResidual is a residual-norm sample; Value is ‖r‖₂/‖b‖₂ (or the
	// unnormalized norm where noted by the producer).
	EvResidual
	// EvBroadcast marks a distmem owner residual broadcast.
	EvBroadcast
	// EvRecovery marks a recovery action (watchdog fire, respawn,
	// retirement); Grid is the affected grid (-1 for a global action).
	EvRecovery
	// EvRollback marks a distmem divergence rollback to the best
	// checkpoint; Value is the residual norm that triggered it.
	EvRollback
	// EvIteration marks one Krylov iteration; Value is the relative
	// residual.
	EvIteration
	// EvDamp marks a damping-factor change by the adaptive controller;
	// Grid is the grid whose ω moved, Value is the new ω.
	EvDamp
)

func (k EventKind) String() string {
	switch k {
	case EvCycle:
		return "cycle"
	case EvCorrection:
		return "correction"
	case EvResidual:
		return "residual"
	case EvBroadcast:
		return "broadcast"
	case EvRecovery:
		return "recovery"
	case EvRollback:
		return "rollback"
	case EvIteration:
		return "iteration"
	case EvDamp:
		return "damp"
	}
	return "unknown"
}

// Event is one timeline entry: what happened, on which grid, when
// (nanoseconds since the tracer started), and an event-specific value.
type Event struct {
	Seq   uint64
	When  int64 // ns since tracer start
	Kind  EventKind
	Grid  int32
	Value float64
}

// Tracer is a bounded ring buffer of timeline events. Recording copies a
// fixed-size Event into a preallocated ring under a short mutex — no
// allocation, no unbounded growth; once the ring wraps, the oldest events
// are overwritten (Dropped counts them). A nil *Tracer ignores Record,
// so tracing is strictly opt-in.
type Tracer struct {
	mu    sync.Mutex
	start time.Time
	ring  []Event
	next  uint64 // total events ever recorded
}

// NewTracer returns a tracer retaining the last `capacity` events
// (minimum 1).
func NewTracer(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{start: time.Now(), ring: make([]Event, capacity)}
}

// Record appends an event to the ring. Nil-safe and allocation-free.
func (t *Tracer) Record(kind EventKind, grid int, value float64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	e := &t.ring[t.next%uint64(len(t.ring))]
	e.Seq = t.next
	e.When = int64(time.Since(t.start))
	e.Kind = kind
	e.Grid = int32(grid)
	e.Value = value
	t.next++
	t.mu.Unlock()
}

// Len returns the number of events currently retained.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return int(t.next)
	}
	return len(t.ring)
}

// Dropped returns how many events were overwritten by ring wraparound.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.next < uint64(len(t.ring)) {
		return 0
	}
	return t.next - uint64(len(t.ring))
}

// Events returns the retained events in recording order (oldest first).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	n := uint64(len(t.ring))
	if t.next <= n {
		return append([]Event(nil), t.ring[:t.next]...)
	}
	out := make([]Event, 0, n)
	for i := t.next - n; i < t.next; i++ {
		out = append(out, t.ring[i%n])
	}
	return out
}

// WriteText writes the retained events as one line each:
//
//	trace 12 3.45ms correction grid=2 value=1
func (t *Tracer) WriteText(w io.Writer) error {
	for _, e := range t.Events() {
		_, err := fmt.Fprintf(w, "trace %d %s %s grid=%d value=%g\n",
			e.Seq, time.Duration(e.When), e.Kind, e.Grid, e.Value)
		if err != nil {
			return err
		}
	}
	return nil
}
