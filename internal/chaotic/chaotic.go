// Package chaotic implements the asynchronous iterative method of Section
// II.C of the paper — Equation 5, the "chaotic relaxation" of Chazan &
// Miranker that all asynchronous-solver theory builds on — at distributed
// granularity: the matrix rows are block-partitioned over P processes
// (goroutines), each process relaxes its own rows, and boundary values
// travel to neighbouring processes through newest-wins halo mailboxes with
// optional injected latency. No process ever waits for another in
// asynchronous mode; the iteration converges whenever ρ(|G|) < 1 (see
// package spectral).
//
// The synchronous mode (barrier after every sweep) is the classical Jacobi
// / block-GS baseline and is bit-reproducible against the serial iteration,
// which the tests exploit.
package chaotic

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"asyncmg/internal/async"
	"asyncmg/internal/partition"
	"asyncmg/internal/sparse"
	"asyncmg/internal/vec"
)

// Relaxation selects the local relaxation each process applies to its rows.
type Relaxation int

const (
	// Jacobi relaxes every owned row against the previous local iterate
	// (weighted by Omega).
	Jacobi Relaxation = iota
	// GaussSeidel sweeps the owned rows in order, using freshly updated
	// owned values and the latest received halo values — block Jacobi
	// across processes, Gauss-Seidel within, the distributed analogue of
	// the paper's hybrid smoother.
	GaussSeidel
)

func (r Relaxation) String() string {
	if r == GaussSeidel {
		return "gauss-seidel"
	}
	return "jacobi"
}

// Config parameterizes a distributed relaxation solve.
type Config struct {
	// Processes is the number of row-block processes.
	Processes int
	// Sweeps is the number of local sweeps each process performs.
	Sweeps int
	// Relax selects Jacobi or GaussSeidel local relaxation.
	Relax Relaxation
	// Omega is the Jacobi damping weight (ignored for GaussSeidel);
	// 0 means 1 (undamped).
	Omega float64
	// Synchronous inserts a global barrier after every sweep, recovering
	// the classical synchronous iteration.
	Synchronous bool
	// HaloDelay delays every halo message by this duration, modelling
	// interconnect latency in asynchronous mode.
	HaloDelay time.Duration
}

// Result reports a distributed relaxation solve.
type Result struct {
	// X is the final iterate.
	X []float64
	// RelRes is ‖b − A X‖₂/‖b‖₂.
	RelRes float64
	// HaloMessages counts boundary-exchange messages sent.
	HaloMessages int64
	// Elapsed is the wall-clock solve time.
	Elapsed time.Duration
	// Diverged is set when the final iterate is non-finite.
	Diverged bool
}

// haloMsg carries one process's boundary values to a neighbour.
type haloMsg struct {
	seq  int64
	vals []float64
}

// plan holds the precomputed communication structure.
type plan struct {
	ranges []partition.Range
	// needs[p][q] lists the global indices process p reads from process q
	// (sorted); empty slices mean no edge.
	needs [][][]int
}

// buildPlan computes, for every process pair (p, q), which of q's entries
// p's rows reference.
func buildPlan(a *sparse.CSR, procs int) *plan {
	pl := &plan{ranges: partition.SplitRows(a.Rows, procs)}
	owner := make([]int, a.Rows)
	for p, rg := range pl.ranges {
		for i := rg.Lo; i < rg.Hi; i++ {
			owner[i] = p
		}
	}
	pl.needs = make([][][]int, procs)
	for p := range pl.needs {
		pl.needs[p] = make([][]int, procs)
		rg := pl.ranges[p]
		seen := map[int]bool{}
		for i := rg.Lo; i < rg.Hi; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.ColIdx[q]
				if j < rg.Lo || j >= rg.Hi {
					if !seen[j] {
						seen[j] = true
						o := owner[j]
						pl.needs[p][o] = append(pl.needs[p][o], j)
					}
				}
			}
		}
		for q := range pl.needs[p] {
			sortInts(pl.needs[p][q])
		}
	}
	return pl
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		x := v[i]
		j := i - 1
		for j >= 0 && v[j] > x {
			v[j+1] = v[j]
			j--
		}
		v[j+1] = x
	}
}

// Solve runs the distributed (a)synchronous relaxation on A x = b, x0 = 0.
func Solve(a *sparse.CSR, b []float64, cfg Config) (*Result, error) {
	if a.Rows != a.Cols {
		return nil, fmt.Errorf("chaotic: matrix must be square, got %dx%d", a.Rows, a.Cols)
	}
	n := a.Rows
	if len(b) != n {
		return nil, fmt.Errorf("chaotic: len(b) = %d, want %d", len(b), n)
	}
	if cfg.Processes < 1 {
		return nil, fmt.Errorf("chaotic: Processes must be >= 1, got %d", cfg.Processes)
	}
	if cfg.Sweeps < 1 {
		return nil, fmt.Errorf("chaotic: Sweeps must be >= 1, got %d", cfg.Sweeps)
	}
	procs := cfg.Processes
	if procs > n {
		procs = n
	}
	omega := cfg.Omega
	if omega == 0 {
		omega = 1
	}
	diag := a.Diag()
	for i, d := range diag {
		if d == 0 {
			return nil, fmt.Errorf("chaotic: zero diagonal at row %d", i)
		}
	}

	pl := buildPlan(a, procs)
	// Mailboxes: mailbox[p][q] carries q's values that p needs.
	mailboxes := make([][]chan haloMsg, procs)
	for p := range mailboxes {
		mailboxes[p] = make([]chan haloMsg, procs)
		for q := range mailboxes[p] {
			if p != q && len(pl.needs[p][q]) > 0 {
				mailboxes[p][q] = make(chan haloMsg, 1)
			}
		}
	}
	var msgCount int64
	var msgMu sync.Mutex
	post := func(p, q int, seq int64, vals []float64) {
		msgMu.Lock()
		msgCount++
		msgMu.Unlock()
		msg := haloMsg{seq: seq, vals: vals}
		deliver := func() {
			for {
				select {
				case mailboxes[p][q] <- msg:
					return
				default:
					select {
					case cur := <-mailboxes[p][q]:
						if cur.seq > msg.seq {
							msg = cur
						}
					default:
					}
				}
			}
		}
		if cfg.HaloDelay > 0 && !cfg.Synchronous {
			go func() {
				time.Sleep(cfg.HaloDelay)
				deliver()
			}()
			return
		}
		deliver()
	}

	// Each process keeps a full-length local copy of x; only owned and
	// halo entries are ever read. The final answer gathers owned slices.
	locals := make([][]float64, procs)
	for p := range locals {
		locals[p] = make([]float64, n)
	}
	final := make([]float64, n)
	var barrier *async.Barrier
	if cfg.Synchronous {
		barrier = async.NewBarrier(procs)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			x := locals[p]
			rg := pl.ranges[p]
			old := make([]float64, rg.Len()) // previous owned values (Jacobi)
			for sweep := 0; sweep < cfg.Sweeps; sweep++ {
				// Asynchronous mode: drain whatever halo values have
				// arrived (possibly none, possibly from several sweeps
				// ahead). Synchronous mode instead exchanges halos in the
				// barrier-framed protocol at the bottom of the sweep, so a
				// fast neighbour's current-sweep values can never leak in.
				if !cfg.Synchronous {
					for q := 0; q < procs; q++ {
						ch := mailboxes[p][q]
						if ch == nil {
							continue
						}
						select {
						case msg := <-ch:
							for z, j := range pl.needs[p][q] {
								x[j] = msg.vals[z]
							}
						default:
						}
					}
				}
				// Relax owned rows.
				switch cfg.Relax {
				case GaussSeidel:
					a.GaussSeidelSweepRange(x, b, rg.Lo, rg.Hi)
				default:
					copy(old, x[rg.Lo:rg.Hi])
					for i := rg.Lo; i < rg.Hi; i++ {
						sum := b[i]
						for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
							j := a.ColIdx[q]
							if j == i {
								continue
							}
							if j >= rg.Lo && j < rg.Hi {
								sum -= a.Vals[q] * old[j-rg.Lo]
							} else {
								sum -= a.Vals[q] * x[j]
							}
						}
						x[i] = (1-omega)*old[i-rg.Lo] + omega*sum/diag[i]
					}
				}
				// Push boundary values to every process that needs them.
				for q := 0; q < procs; q++ {
					if q == p || mailboxes[q] == nil || mailboxes[q][p] == nil {
						continue
					}
					need := pl.needs[q][p]
					vals := make([]float64, len(need))
					for z, j := range need {
						vals[z] = x[j]
					}
					post(q, p, int64(sweep+1), vals)
				}
				if cfg.Synchronous {
					barrier.Wait()
					// In synchronous mode every halo message for this sweep
					// has been posted; drain it before the next sweep so the
					// iteration is exactly the classical one.
					for q := 0; q < procs; q++ {
						ch := mailboxes[p][q]
						if ch == nil {
							continue
						}
						select {
						case msg := <-ch:
							for z, j := range pl.needs[p][q] {
								x[j] = msg.vals[z]
							}
						default:
						}
					}
					barrier.Wait()
				} else {
					runtime.Gosched()
				}
			}
			copy(final[rg.Lo:rg.Hi], x[rg.Lo:rg.Hi])
		}(p)
	}
	wg.Wait()
	elapsed := time.Since(start)

	r := make([]float64, n)
	a.Residual(r, b, final)
	nb := vec.Norm2(b)
	if nb == 0 {
		nb = 1
	}
	return &Result{
		X:            final,
		RelRes:       vec.Norm2(r) / nb,
		HaloMessages: msgCount,
		Elapsed:      elapsed,
		Diverged:     vec.HasNonFinite(final),
	}, nil
}
