package chaotic

import (
	"math"
	"testing"
	"time"

	"asyncmg/internal/grid"
	"asyncmg/internal/smoother"
	"asyncmg/internal/sparse"
	"asyncmg/internal/spectral"
	"asyncmg/internal/vec"
)

func TestValidation(t *testing.T) {
	a := grid.Laplacian7pt(4)
	b := grid.RandomRHS(a.Rows, 1)
	if _, err := Solve(a, b, Config{Processes: 0, Sweeps: 5}); err == nil {
		t.Error("zero processes accepted")
	}
	if _, err := Solve(a, b, Config{Processes: 2, Sweeps: 0}); err == nil {
		t.Error("zero sweeps accepted")
	}
	if _, err := Solve(a, b[:3], Config{Processes: 2, Sweeps: 5}); err == nil {
		t.Error("short RHS accepted")
	}
	coo := sparse.NewCOO(2, 3, 1)
	coo.Add(0, 0, 1)
	if _, err := Solve(coo.ToCSR(), make([]float64, 2), Config{Processes: 1, Sweeps: 1}); err == nil {
		t.Error("non-square accepted")
	}
	z := sparse.NewCOO(2, 2, 2)
	z.Add(0, 1, 1)
	z.Add(1, 0, 1)
	if _, err := Solve(z.ToCSR(), make([]float64, 2), Config{Processes: 1, Sweeps: 1}); err == nil {
		t.Error("zero diagonal accepted")
	}
}

// serialJacobi runs the classical synchronous weighted Jacobi iteration.
func serialJacobi(a *sparse.CSR, b []float64, omega float64, sweeps int) []float64 {
	n := a.Rows
	d := a.Diag()
	x := make([]float64, n)
	next := make([]float64, n)
	for s := 0; s < sweeps; s++ {
		for i := 0; i < n; i++ {
			sum := b[i]
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.ColIdx[q]
				if j != i {
					sum -= a.Vals[q] * x[j]
				}
			}
			next[i] = (1-omega)*x[i] + omega*sum/d[i]
		}
		x, next = next, x
	}
	return x
}

func TestSynchronousJacobiMatchesSerial(t *testing.T) {
	// The distributed synchronous mode must be bit-identical to the serial
	// classical Jacobi iteration, for any process count.
	a := grid.Laplacian7pt(5)
	b := grid.RandomRHS(a.Rows, 2)
	want := serialJacobi(a, b, 0.8, 12)
	for _, procs := range []int{1, 2, 5, 8} {
		res, err := Solve(a, b, Config{
			Processes: procs, Sweeps: 12, Omega: 0.8, Synchronous: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if math.Abs(res.X[i]-want[i]) > 1e-14 {
				t.Fatalf("procs=%d: x[%d] = %v, serial %v", procs, i, res.X[i], want[i])
			}
		}
	}
}

func TestAsynchronousConverges(t *testing.T) {
	// ρ(|G|) < 1 for damped Jacobi on the Laplacian, so the asynchronous
	// iteration must converge regardless of message timing (Eq. 5 / the
	// Chazan-Miranker theorem).
	a := grid.Laplacian7pt(6)
	scale, err := smoother.InterpolantScaling(a, smoother.Config{Kind: smoother.WJacobi, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := spectral.AsyncSmootherRadius(a, scale)
	if err != nil {
		t.Fatal(err)
	}
	if rho >= 1 {
		t.Fatalf("test premise broken: rho = %v", rho)
	}
	b := grid.RandomRHS(a.Rows, 3)
	res, err := Solve(a, b, Config{Processes: 6, Sweeps: 400, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged {
		t.Fatal("diverged with rho(|G|) < 1")
	}
	if res.RelRes > 1e-6 {
		t.Errorf("async Jacobi relres %g after 400 sweeps", res.RelRes)
	}
	if res.HaloMessages == 0 {
		t.Error("no halo messages counted")
	}
}

func TestAsynchronousWithLatencyConverges(t *testing.T) {
	a := grid.Laplacian7pt(5)
	b := grid.RandomRHS(a.Rows, 4)
	res, err := Solve(a, b, Config{
		Processes: 4, Sweeps: 300, Omega: 0.9, HaloDelay: 100 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.RelRes > 1e-3 {
		t.Errorf("latency run relres %g (diverged=%v)", res.RelRes, res.Diverged)
	}
}

func TestGaussSeidelModeConverges(t *testing.T) {
	a := grid.Laplacian7pt(5)
	b := grid.RandomRHS(a.Rows, 5)
	res, err := Solve(a, b, Config{Processes: 4, Sweeps: 200, Relax: GaussSeidel})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelRes > 1e-8 {
		t.Errorf("GS mode relres %g", res.RelRes)
	}
	// GS should beat Jacobi at equal sweeps.
	resJ, err := Solve(a, b, Config{Processes: 4, Sweeps: 200, Omega: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelRes > resJ.RelRes {
		t.Errorf("GS (%g) not better than Jacobi (%g)", res.RelRes, resJ.RelRes)
	}
}

func TestOverRelaxedDiverges(t *testing.T) {
	// ω = 2 violates ρ(|G|) < 1 on the Laplacian: the iteration must blow
	// up and be flagged, not hang.
	a := grid.Laplacian7pt(4)
	b := grid.RandomRHS(a.Rows, 6)
	res, err := Solve(a, b, Config{Processes: 4, Sweeps: 200, Omega: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Diverged && res.RelRes < 1e3 {
		t.Errorf("omega=2 did not diverge: relres %g", res.RelRes)
	}
}

func TestSingleProcessEqualsSerial(t *testing.T) {
	// One process, asynchronous: no halos at all, plain local iteration.
	a := grid.Laplacian7pt(4)
	b := grid.RandomRHS(a.Rows, 7)
	res, err := Solve(a, b, Config{Processes: 1, Sweeps: 30, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	want := serialJacobi(a, b, 0.9, 30)
	for i := range want {
		if math.Abs(res.X[i]-want[i]) > 1e-14 {
			t.Fatalf("x[%d] differs from serial", i)
		}
	}
	if res.HaloMessages != 0 {
		t.Errorf("single process sent %d halo messages", res.HaloMessages)
	}
}

func TestProcessesClampedToRows(t *testing.T) {
	a := grid.Laplacian7pt(2) // 8 rows
	b := grid.RandomRHS(a.Rows, 8)
	res, err := Solve(a, b, Config{Processes: 64, Sweeps: 150, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelRes > 1e-6 {
		t.Errorf("relres %g with per-row processes", res.RelRes)
	}
}

func TestPlanHaloSetsAreMinimal(t *testing.T) {
	// The communication plan must list exactly the external columns each
	// block's rows reference.
	a := grid.Laplacian7pt(3)
	pl := buildPlan(a, 3)
	for p, rg := range pl.ranges {
		want := map[int]bool{}
		for i := rg.Lo; i < rg.Hi; i++ {
			for q := a.RowPtr[i]; q < a.RowPtr[i+1]; q++ {
				j := a.ColIdx[q]
				if j < rg.Lo || j >= rg.Hi {
					want[j] = true
				}
			}
		}
		got := 0
		for q := range pl.needs[p] {
			for _, j := range pl.needs[p][q] {
				if !want[j] {
					t.Fatalf("process %d lists unneeded halo index %d", p, j)
				}
				got++
			}
		}
		if got != len(want) {
			t.Fatalf("process %d plan has %d halo indices, want %d", p, got, len(want))
		}
	}
}

func TestAsyncVsSyncSameFixedPoint(t *testing.T) {
	// Both modes must approach the same solution (the fixed point does not
	// depend on the schedule).
	a := grid.Laplacian7pt(4)
	b := grid.RandomRHS(a.Rows, 9)
	s, err := Solve(a, b, Config{Processes: 4, Sweeps: 400, Omega: 0.9, Synchronous: true})
	if err != nil {
		t.Fatal(err)
	}
	as, err := Solve(a, b, Config{Processes: 4, Sweeps: 400, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if d := vec.NormInf(diff(s.X, as.X)); d > 1e-6 {
		t.Errorf("sync and async fixed points differ by %g", d)
	}
}

func diff(a, b []float64) []float64 {
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}
