package dense

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"asyncmg/internal/sparse"
)

func tridiag(n int) *sparse.CSR {
	coo := sparse.NewCOO(n, n, 3*n)
	for i := 0; i < n; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
		}
		if i < n-1 {
			coo.Add(i, i+1, -1)
		}
	}
	return coo.ToCSR()
}

func TestFactorSolveTridiagonal(t *testing.T) {
	n := 50
	a := tridiag(n)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	if f.N() != n {
		t.Fatalf("N() = %d, want %d", f.N(), n)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = float64(i%7) - 3
	}
	x := make([]float64, n)
	f.Solve(x, b)
	r := make([]float64, n)
	a.Residual(r, b, x)
	for i, v := range r {
		if math.Abs(v) > 1e-10 {
			t.Fatalf("residual[%d] = %g after direct solve", i, v)
		}
	}
}

func TestSolveAliasing(t *testing.T) {
	a := tridiag(10)
	f, err := Factor(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, 10)
	for i := range b {
		b[i] = 1
	}
	want := make([]float64, 10)
	f.Solve(want, b)
	// Solve in place: x aliases b.
	f.Solve(b, b)
	for i := range b {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("aliased solve differs at %d: %g vs %g", i, b[i], want[i])
		}
	}
}

func TestFactorSingular(t *testing.T) {
	coo := sparse.NewCOO(3, 3, 3)
	coo.Add(0, 0, 1)
	coo.Add(1, 1, 1)
	// row 2 is all zeros
	coo.Add(2, 2, 0)
	if _, err := Factor(coo.ToCSR()); err != ErrSingular {
		t.Fatalf("err = %v, want ErrSingular", err)
	}
}

func TestFactorRejectsNonSquare(t *testing.T) {
	coo := sparse.NewCOO(2, 3, 1)
	coo.Add(0, 0, 1)
	if _, err := Factor(coo.ToCSR()); err == nil {
		t.Fatal("expected error for non-square matrix")
	}
}

func TestPivotingNeeded(t *testing.T) {
	// Zero on the leading diagonal forces a pivot swap.
	m := [][]float64{
		{0, 1},
		{1, 0},
	}
	f, err := FactorDense(m)
	if err != nil {
		t.Fatal(err)
	}
	x := make([]float64, 2)
	f.Solve(x, []float64{3, 4})
	if math.Abs(x[0]-4) > 1e-14 || math.Abs(x[1]-3) > 1e-14 {
		t.Fatalf("x = %v, want [4 3]", x)
	}
}

func TestRandomSolveProperty(t *testing.T) {
	// For random diagonally dominant matrices, A (A⁻¹ b) == b.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		m := make([][]float64, n)
		for i := range m {
			m[i] = make([]float64, n)
			rowSum := 0.0
			for j := range m[i] {
				if i != j {
					m[i][j] = rng.NormFloat64()
					rowSum += math.Abs(m[i][j])
				}
			}
			m[i][i] = rowSum + 1 // strict diagonal dominance => nonsingular
		}
		lu, err := FactorDense(m)
		if err != nil {
			return false
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		x := make([]float64, n)
		lu.Solve(x, b)
		for i := 0; i < n; i++ {
			s := 0.0
			for j := 0; j < n; j++ {
				s += m[i][j] * x[j]
			}
			if math.Abs(s-b[i]) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFactorDenseDoesNotMutateInput(t *testing.T) {
	m := [][]float64{{2, 1}, {1, 2}}
	_, err := FactorDense(m)
	if err != nil {
		t.Fatal(err)
	}
	if m[0][0] != 2 || m[0][1] != 1 || m[1][0] != 1 || m[1][1] != 2 {
		t.Fatal("FactorDense mutated its input")
	}
}
