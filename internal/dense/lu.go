// Package dense provides a small dense direct solver used for the exact
// solve on the coarsest grid of the multigrid hierarchy (the role LAPACK
// plays in hypre/BoomerAMG). It implements LU factorization with partial
// pivoting and forward/back substitution.
package dense

import (
	"errors"
	"math"

	"asyncmg/internal/sparse"
)

// LU holds an LU factorization with partial pivoting of an n-by-n matrix:
// P A = L U with unit lower-triangular L and upper-triangular U packed into
// one dense array.
type LU struct {
	n    int
	lu   []float64 // row-major packed L\U
	perm []int     // row permutation: solve uses b[perm[i]]
}

// ErrSingular is returned when factorization encounters an exactly zero
// pivot column.
var ErrSingular = errors.New("dense: matrix is singular")

// Factor computes the LU factorization of the sparse matrix a expanded to
// dense form. Intended for the small coarsest-grid systems (a few hundred
// rows at most).
func Factor(a *sparse.CSR) (*LU, error) {
	if a.Rows != a.Cols {
		return nil, errors.New("dense: Factor requires a square matrix")
	}
	n := a.Rows
	f := &LU{n: n, lu: make([]float64, n*n), perm: make([]int, n)}
	for i := 0; i < n; i++ {
		f.perm[i] = i
		for p := a.RowPtr[i]; p < a.RowPtr[i+1]; p++ {
			f.lu[i*n+a.ColIdx[p]] = a.Vals[p]
		}
	}
	if err := f.factorize(); err != nil {
		return nil, err
	}
	return f, nil
}

// FactorDense is like Factor but takes a dense row-major matrix (copied, the
// caller's data is not modified).
func FactorDense(m [][]float64) (*LU, error) {
	n := len(m)
	f := &LU{n: n, lu: make([]float64, n*n), perm: make([]int, n)}
	for i := 0; i < n; i++ {
		if len(m[i]) != n {
			return nil, errors.New("dense: FactorDense requires a square matrix")
		}
		f.perm[i] = i
		copy(f.lu[i*n:(i+1)*n], m[i])
	}
	if err := f.factorize(); err != nil {
		return nil, err
	}
	return f, nil
}

func (f *LU) factorize() error {
	n := f.n
	for k := 0; k < n; k++ {
		// Partial pivoting: find the largest entry in column k at/below row k.
		pivRow, pivVal := k, math.Abs(f.lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if v := math.Abs(f.lu[i*n+k]); v > pivVal {
				pivRow, pivVal = i, v
			}
		}
		if pivVal == 0 {
			return ErrSingular
		}
		if pivRow != k {
			f.perm[k], f.perm[pivRow] = f.perm[pivRow], f.perm[k]
			rk := f.lu[k*n : (k+1)*n]
			rp := f.lu[pivRow*n : (pivRow+1)*n]
			for j := 0; j < n; j++ {
				rk[j], rp[j] = rp[j], rk[j]
			}
		}
		pivot := f.lu[k*n+k]
		for i := k + 1; i < n; i++ {
			m := f.lu[i*n+k] / pivot
			f.lu[i*n+k] = m
			if m == 0 {
				continue
			}
			ri := f.lu[i*n : (i+1)*n]
			rk := f.lu[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return nil
}

// N returns the dimension of the factored matrix.
func (f *LU) N() int { return f.n }

// Solve computes x = A⁻¹ b. x and b may alias. len(x) == len(b) == n.
func (f *LU) Solve(x, b []float64) {
	f.SolveScratch(x, b, make([]float64, f.n))
}

// SolveScratch is Solve with a caller-provided forward-substitution
// scratch vector y (len >= n, clobbered), for allocation-free repeated
// solves. y must not alias x or b.
func (f *LU) SolveScratch(x, b, y []float64) {
	n := f.n
	// Apply permutation while forward-substituting L y = P b.
	y = y[:n]
	for i := 0; i < n; i++ {
		s := b[f.perm[i]]
		ri := f.lu[i*n : (i+1)*n]
		for j := 0; j < i; j++ {
			s -= ri[j] * y[j]
		}
		y[i] = s
	}
	// Back-substitute U x = y.
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		ri := f.lu[i*n : (i+1)*n]
		for j := i + 1; j < n; j++ {
			s -= ri[j] * x[j]
		}
		x[i] = s / ri[i]
	}
}
