#!/bin/sh
# Regenerate BENCH_serve.json, the solver-service benchmark: the load
# generator drives an in-process mgserve and records the hierarchy-cache
# and request-batching evidence; benchguard -serve then enforces the
# structural invariants (one setup per miss, zero setup on hits, batch
# beats sequential).
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mgserve -loadgen -out BENCH_serve.json "$@"
go run ./scripts/benchguard -serve BENCH_serve.json
