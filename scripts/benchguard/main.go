// Command benchguard records and enforces benchmark baselines.
//
// It reads standard `go test -bench` output on stdin and either writes a
// JSON baseline file (-write) or compares the run against a checked-in
// baseline (-baseline), exiting non-zero when any benchmark's allocs/op
// regresses beyond the tolerance. Times are recorded for reference but
// never enforced — they are machine-dependent; allocation counts are
// contracts.
//
// Usage:
//
//	go test -run '^$' -bench '^BenchmarkSetup$' -benchtime 20x . | \
//	    go run ./scripts/benchguard -write BENCH_setup.json
//	go test -run '^$' -bench '^BenchmarkSetup$' -benchtime 20x . | \
//	    go run ./scripts/benchguard -baseline BENCH_setup.json
//
// A second mode guards the solver-service benchmark: `-serve` reads a
// BENCH_serve.json written by `mgserve -loadgen` and enforces the
// service's structural invariants — exactly one setup build per cache
// miss, zero setup time on every cache hit, the batching experiment
// actually coalesced, and the block solve beat the sequential solves:
//
//	go run ./cmd/mgserve -loadgen -out BENCH_serve.json
//	go run ./scripts/benchguard -serve BENCH_serve.json
//
// A third mode guards the cluster benchmark: `-cluster` reads a
// BENCH_cluster.json written by `mgserve -cluster-loadgen` and enforces
// the fault-tolerance invariants — zero failed requests through the
// whole kill/restart/straggle/drain schedule, hedges or failovers
// actually covering the staged faults, membership rebuilding the ring,
// and replication keeping the restarted node's phase above the cache
// hit-rate floor:
//
//	go run ./cmd/mgserve -cluster-loadgen -out BENCH_cluster.json
//	go run ./scripts/benchguard -cluster BENCH_cluster.json
//
// A fourth mode guards the matrix-free stencil kernels: `-stencil` reads
// `go test -bench 'StencilApply|MixedPrecisionCycle'` output on stdin and
// enforces the operator-generic engine's structural invariants — the 7pt
// stencil apply at least 2x the CSR row throughput (the 27pt stencil,
// whose 27-point gather is arithmetically much closer to a CSR row, gets
// a softer 1.2x floor), and zero allocations per operation on every
// stencil and mixed-precision-cycle benchmark:
//
//	go test -run '^$' -bench 'StencilApply|MixedPrecisionCycle' -benchtime 100x . | \
//	    go run ./scripts/benchguard -stencil
//
// A fifth mode guards the asynchronous stability map: `-async` reads a
// stability map written by `mgsim -staleness -out` and enforces the
// adaptive-damping invariants against the checked-in BENCH_async.json
// baseline — at least -min-rescued scenarios that roll back undamped
// converge under the adaptive policy, and no (scenario, policy) cell's
// outcome rank regresses below the baseline's:
//
//	go run ./cmd/mgsim -staleness -out /tmp/stability.json
//	go run ./scripts/benchguard -async /tmp/stability.json
//
// A sixth mode guards coarse-operator sparsification: `-sparsify` reads
// a BENCH_sparsify.json written by `mgbench -sparsify -out` and enforces
// the structural invariants — total coarse-level nnz reduced by at least
// -min-reduction, no problem's iteration count to tolerance more than
// -max-extra-iters above the unsparsified golden run (a fully guarded
// problem whose levels all reverted passes trivially: reverting is the
// guard working, not a regression), and the sparsification kernel
// holding its 0 allocs/op steady-state contract:
//
//	go run ./cmd/mgbench -sparsify -out BENCH_sparsify.json
//	go run ./scripts/benchguard -sparsify BENCH_sparsify.json
//
// A seventh mode guards the AMG-preconditioned Krylov subsystem:
// `-krylov` reads a BENCH_krylov.json written by `mgbench -krylov -out`
// and enforces the structural invariants — on every paper matrix PCG
// converges in no more iterations than plain cycling needs to reach the
// same tolerance, on the convection-diffusion operator plain Mult
// cycling stalls within the budget while Multadd-preconditioned FGMRES
// converges, the warm solves allocate nothing, and the block multi-RHS
// PCG is bitwise identical to the solo solves. Solve times are recorded
// for reference but never enforced:
//
//	go run ./cmd/mgbench -krylov -out BENCH_krylov.json
//	go run ./scripts/benchguard -krylov BENCH_krylov.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"asyncmg/internal/harness"
)

type entry struct {
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
}

type baseline struct {
	Comment    string           `json:"_comment"`
	Recorded   string           `json:"recorded"`
	CPU        string           `json:"cpu"`
	Go         string           `json:"go"`
	Benchmarks map[string]entry `json:"benchmarks"`
}

// procsSuffix strips the -GOMAXPROCS suffix go test appends to benchmark
// names when running with more than one P.
var procsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	write := flag.String("write", "", "write a new baseline JSON to this path")
	base := flag.String("baseline", "", "compare the run against this baseline JSON")
	serveFile := flag.String("serve", "", "check a BENCH_serve.json written by mgserve -loadgen")
	clusterFile := flag.String("cluster", "", "check a BENCH_cluster.json written by mgserve -cluster-loadgen")
	stencil := flag.Bool("stencil", false, "check StencilApply/MixedPrecisionCycle bench output on stdin")
	asyncFile := flag.String("async", "", "check a stability map written by mgsim -staleness -out")
	sparsifyFile := flag.String("sparsify", "", "check a BENCH_sparsify.json written by mgbench -sparsify -out")
	krylovFile := flag.String("krylov", "", "check a BENCH_krylov.json written by mgbench -krylov -out")
	minReduction := flag.Float64("min-reduction", 0.25, "minimum total coarse-nnz reduction (-sparsify only)")
	maxExtraIters := flag.Int("max-extra-iters", 1, "maximum iterations over the golden run (-sparsify only)")
	asyncBase := flag.String("async-baseline", "BENCH_async.json", "baseline stability map for -async")
	minRescued := flag.Int("min-rescued", 3, "minimum scenarios rescued by adaptive damping (-async only)")
	minStencil := flag.Float64("min-stencil-speedup", 2.0, "minimum 7pt stencil-vs-CSR apply speedup (-stencil only)")
	min27 := flag.Float64("min-stencil27-speedup", 1.2, "minimum 27pt stencil-vs-CSR apply speedup (-stencil only)")
	minSpeedup := flag.Float64("min-speedup", 1.05, "minimum batch-vs-sequential solve speedup (-serve only)")
	minHitRate := flag.Float64("min-hit-rate", 0.5, "minimum restart-phase cache hit rate (-cluster only)")
	tol := flag.Float64("tol", 0.10, "relative allocs/op headroom before a regression is reported")
	slack := flag.Float64("slack", 16, "absolute allocs/op headroom added on top of -tol")
	comment := flag.String("comment", defaultComment, "comment stored in the baseline (-write only)")
	flag.Parse()
	set := 0
	for _, f := range []string{*write, *base, *serveFile, *clusterFile, *asyncFile, *sparsifyFile, *krylovFile} {
		if f != "" {
			set++
		}
	}
	if *stencil {
		set++
	}
	if set != 1 {
		fmt.Fprintln(os.Stderr, "benchguard: exactly one of -write, -baseline, -serve, -cluster, -stencil, -async, -sparsify or -krylov is required")
		os.Exit(2)
	}
	if *krylovFile != "" {
		if err := checkKrylov(*krylovFile); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *sparsifyFile != "" {
		if err := checkSparsify(*sparsifyFile, *minReduction, *maxExtraIters); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *asyncFile != "" {
		if err := checkAsync(*asyncFile, *asyncBase, *minRescued); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *stencil {
		if err := checkStencil(bufio.NewScanner(os.Stdin), *minStencil, *min27); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *serveFile != "" {
		if err := checkServe(*serveFile, *minSpeedup); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *clusterFile != "" {
		if err := checkCluster(*clusterFile, *minHitRate); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		return
	}

	run, cpu, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	if len(run) == 0 {
		fmt.Fprintln(os.Stderr, "benchguard: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *write != "" {
		b := baseline{
			Comment:    *comment,
			Recorded:   time.Now().UTC().Format("2006-01-02"),
			CPU:        cpu,
			Go:         runtime.Version() + " " + runtime.GOOS + "/" + runtime.GOARCH,
			Benchmarks: run,
		}
		buf, err := json.MarshalIndent(&b, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*write, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("benchguard: wrote %d benchmarks to %s\n", len(run), *write)
		return
	}

	buf, err := os.ReadFile(*base)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
	var b baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %s: %v\n", *base, err)
		os.Exit(1)
	}
	failed := 0
	for name, got := range run {
		want, ok := b.Benchmarks[name]
		if !ok {
			fmt.Printf("benchguard: %s: no baseline entry (new benchmark, ok)\n", name)
			continue
		}
		limit := want.AllocsPerOp*(1+*tol) + *slack
		if got.AllocsPerOp > limit {
			fmt.Printf("benchguard: FAIL %s: %.0f allocs/op, baseline %.0f (limit %.0f)\n",
				name, got.AllocsPerOp, want.AllocsPerOp, limit)
			failed++
		} else {
			fmt.Printf("benchguard: ok   %s: %.0f allocs/op (baseline %.0f)\n",
				name, got.AllocsPerOp, want.AllocsPerOp)
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "benchguard: %d benchmark(s) regressed allocs/op beyond baseline\n", failed)
		os.Exit(1)
	}
}

const defaultComment = "AMG setup-phase benchmark baseline (BenchmarkSetup in setup_bench_test.go): " +
	"serial vs sharded setup for the paper's four matrices. Regenerate with scripts/bench_setup.sh. " +
	"ns_per_op is machine-dependent reference only; allocs_per_op is the enforced contract " +
	"(CI runs benchguard -baseline and fails on regression)."

// serveBench mirrors the BENCH_serve.json schema written by
// cmd/mgserve's load generator (unknown fields are ignored).
type serveBench struct {
	Repeats          int     `json:"repeats"`
	SetupNSFirst     int64   `json:"setup_ns_first"`
	SetupNSRestMax   int64   `json:"setup_ns_rest_max"`
	SetupBuilds      int64   `json:"setup_builds"`
	CacheMisses      int64   `json:"cache_misses"`
	CacheHits        int64   `json:"cache_hits"`
	BatchK           int     `json:"batch_k"`
	BatchedObserved  int     `json:"batched_observed"`
	BatchSolveNS     int64   `json:"batch_solve_ns"`
	SequentialNS     int64   `json:"sequential_solve_ns"`
	BatchSpeedup     float64 `json:"batch_speedup"`
	RejectedRequests int64   `json:"rejected_total"`
}

// checkServe enforces the solver-service invariants on a loadgen result:
// the hierarchy cache must have eliminated repeat setups entirely (these
// are structural, not timing, so they hold on any machine), and the
// batched block solve must beat the same solves run sequentially by the
// configured margin.
func checkServe(path string, minSpeedup float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b serveBench
	if err := json.Unmarshal(buf, &b); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	checkf(b.Repeats >= 2, "cache experiment needs >= 2 repeats, got %d", b.Repeats)
	checkf(b.SetupNSFirst > 0, "first request paid no setup (setup_ns_first = %d): cache evidence is vacuous", b.SetupNSFirst)
	checkf(b.SetupNSRestMax == 0, "a cache hit paid setup time (setup_ns_rest_max = %d)", b.SetupNSRestMax)
	checkf(b.SetupBuilds == b.CacheMisses, "setup_builds (%d) != cache_misses (%d): some request rebuilt a cached hierarchy", b.SetupBuilds, b.CacheMisses)
	checkf(b.CacheHits > 0, "no cache hits recorded")
	checkf(b.BatchK >= 2, "batch experiment needs k >= 2, got %d", b.BatchK)
	checkf(b.BatchedObserved == b.BatchK, "only %d of %d concurrent solves coalesced", b.BatchedObserved, b.BatchK)
	checkf(b.BatchSolveNS > 0 && b.SequentialNS > 0, "missing batch timings (%d, %d)", b.BatchSolveNS, b.SequentialNS)
	checkf(b.BatchSpeedup >= minSpeedup, "batch speedup %.3fx below the %.2fx floor", b.BatchSpeedup, minSpeedup)
	checkf(b.RejectedRequests == 0, "loadgen saw %d rejected requests", b.RejectedRequests)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d serve invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: ok   serve: setup paid once (%.1fms), %d hits at 0ns, batch k=%d speedup %.2fx\n",
		float64(b.SetupNSFirst)/1e6, b.CacheHits, b.BatchK, b.BatchSpeedup)
	return nil
}

// clusterBench mirrors the BENCH_cluster.json schema written by
// cmd/mgserve's cluster load generator (unknown fields are ignored;
// QPS/latency fields are reference-only and never enforced).
type clusterBench struct {
	Nodes    int `json:"nodes"`
	Replicas int `json:"replicas"`
	Phases   []struct {
		Name     string `json:"name"`
		Requests int64  `json:"requests"`
		Failed   int64  `json:"failed"`
		Hits     int64  `json:"hits"`
		Misses   int64  `json:"misses"`
	} `json:"phases"`
	FailedTotal    int64   `json:"failed_total"`
	RestartHitRate float64 `json:"restart_hit_rate"`
	HedgeWins      int64   `json:"hedge_wins_total"`
	Failovers      int64   `json:"failovers_total"`
	RingRebuilds   int64   `json:"ring_rebuilds_total"`
	ReplicaWarms   int64   `json:"replica_warms_total"`
	ChaosRefused   int64   `json:"chaos_refused"`
}

// checkCluster enforces the cluster tier's fault-tolerance invariants on
// a cluster-loadgen result. All structural, none timing-based: a fleet
// that loses requests to a staged kill, never hedges around the
// straggler, never rebuilds its ring, or comes back from a restart
// cache-cold fails on any machine.
func checkCluster(path string, minHitRate float64) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var b clusterBench
	if err := json.Unmarshal(buf, &b); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	checkf(b.Nodes >= 3, "fleet has %d nodes, want >= 3", b.Nodes)
	checkf(b.Replicas >= 2, "replication factor %d, want >= 2", b.Replicas)
	want := []string{"warmup", "steady", "kill", "restart", "straggle", "drain"}
	have := map[string]bool{}
	for _, ph := range b.Phases {
		have[ph.Name] = true
		checkf(ph.Requests > 0, "phase %q issued no requests", ph.Name)
		checkf(ph.Failed == 0, "phase %q failed %d of %d requests, want 0", ph.Name, ph.Failed, ph.Requests)
	}
	for _, name := range want {
		checkf(have[name], "phase %q missing from the schedule", name)
	}
	checkf(b.FailedTotal == 0, "%d requests failed across the fault schedule, want 0", b.FailedTotal)
	checkf(b.RestartHitRate >= minHitRate, "restart-phase hit rate %.3f below the %.2f floor (replication did not repopulate the cache)", b.RestartHitRate, minHitRate)
	checkf(b.HedgeWins >= 1, "no hedge ever won (%d); the straggler was never routed around", b.HedgeWins)
	checkf(b.HedgeWins+b.Failovers >= 1, "neither hedges (%d) nor failovers (%d) covered the staged faults", b.HedgeWins, b.Failovers)
	checkf(b.RingRebuilds >= 4, "ring rebuilds %d, want >= 4 (initial, kill, restart, drain)", b.RingRebuilds)
	checkf(b.ReplicaWarms >= 1, "no replica warms recorded; replication is dead", b.ReplicaWarms)
	checkf(b.ChaosRefused >= 1, "chaos refused no requests; the kill never landed on live traffic", b.ChaosRefused)
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d cluster invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: ok   cluster: %d nodes RF=%d, %d failed, restart hit rate %.2f, %d hedge wins, %d rebuilds, %d warms\n",
		b.Nodes, b.Replicas, b.FailedTotal, b.RestartHitRate, b.HedgeWins, b.RingRebuilds, b.ReplicaWarms)
	return nil
}

// readStability loads a stability map written by mgsim -staleness -out
// (and checked in as BENCH_async.json).
func readStability(path string) (*harness.StabilityMap, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m harness.StabilityMap
	if err := json.Unmarshal(buf, &m); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	if len(m.Cells) == 0 {
		return nil, fmt.Errorf("%s: stability map has no cells", path)
	}
	return &m, nil
}

// checkAsync enforces the asynchronous stability invariants: the current
// sweep must rescue at least minRescued scenarios (rolled back at ω = 1,
// stable under the adaptive policy), and against the checked-in baseline
// no (scenario, policy) cell's outcome rank may drop — a cell that
// converged or stabilised yesterday must not stall or roll back today.
// Outcomes, not residuals, are compared: asynchronous residuals wobble
// run to run, but the classification is the contract.
func checkAsync(path, basePath string, minRescued int) error {
	cur, err := readStability(path)
	if err != nil {
		return err
	}
	base, err := readStability(basePath)
	if err != nil {
		return err
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	checkf(cur.Rescued() >= minRescued,
		"adaptive damping rescued %d rolled-back scenarios, want >= %d", cur.Rescued(), minRescued)
	for i := range base.Cells {
		b := &base.Cells[i]
		c := cur.Cell(b.Scenario, b.Policy)
		if c == nil {
			checkf(false, "cell %s/%s missing from the current map", b.Scenario, b.Policy)
			continue
		}
		checkf(harness.OutcomeRank(c.Outcome) >= harness.OutcomeRank(b.Outcome),
			"cell %s/%s regressed: %s, baseline %s", b.Scenario, b.Policy, c.Outcome, b.Outcome)
		if b.Policy == harness.PolicyAuto && b.Outcome != harness.OutcomeRolledBack {
			checkf(c.MinOmega > 0 && c.MinOmega <= 1,
				"cell %s/%s: min ω %v out of (0, 1]", b.Scenario, b.Policy, c.MinOmega)
		}
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d async stability invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: ok   async: %d cells, %d scenarios rescued by adaptive damping (floor %d), no outcome regressions\n",
		len(cur.Cells), cur.Rescued(), minRescued)
	return nil
}

// checkSparsify enforces the coarse-operator sparsification invariants on
// a BENCH_sparsify.json report. All structural, none timing-based: the
// nnz reduction, the iteration-count ceiling, and the kernel's allocation
// contract hold on any machine. Cycle times are recorded in the report
// for reference but never enforced.
func checkSparsify(path string, minReduction float64, maxExtraIters int) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep harness.SparsifyReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	checkf(len(rep.Problems) > 0, "report has no problems")
	checkf(rep.TotalCoarseNNZBefore > 0, "report has no coarse levels (total_coarse_nnz_before = 0)")
	checkf(rep.TotalReduction >= minReduction,
		"total coarse-nnz reduction %.1f%% below the %.0f%% floor", 100*rep.TotalReduction, 100*minReduction)
	checkf(rep.KernelAllocsPerOp == 0,
		"sparsification kernel allocates %.0f allocs/op steady-state, want 0", rep.KernelAllocsPerOp)
	for _, p := range rep.Problems {
		checkf(p.ItersSparsified <= p.ItersGolden+maxExtraIters,
			"%s: sparsified run took %d iterations, golden %d (limit +%d)",
			p.Problem, p.ItersSparsified, p.ItersGolden, maxExtraIters)
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d sparsify invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: ok   sparsify: theta=%.2f mode=%s, coarse nnz %d -> %d (-%.1f%%), %d problems within +%d iters, kernel 0 allocs/op\n",
		rep.Theta, rep.Mode, rep.TotalCoarseNNZBefore, rep.TotalCoarseNNZAfter,
		100*rep.TotalReduction, len(rep.Problems), maxExtraIters)
	return nil
}

// checkKrylov enforces the AMG-preconditioned Krylov invariants on a
// BENCH_krylov.json report. All structural, none timing-based: the
// iteration-count comparison, the conv-diff stall/convergence pair, the
// allocation contracts and the block-vs-solo bitwise match hold on any
// machine. Solve times are recorded in the report for reference only.
func checkKrylov(path string) error {
	buf, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep harness.KrylovReport
	if err := json.Unmarshal(buf, &rep); err != nil {
		return fmt.Errorf("%s: %v", path, err)
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	checkf(len(rep.Rows) > 0, "report has no problem rows")
	for _, row := range rep.Rows {
		checkf(row.PCGConverged, "%s: PCG did not converge (%d iterations)", row.Problem, row.ItersPCG)
		checkf(row.ItersPCG <= row.ItersCycle,
			"%s: PCG took %d iterations, plain cycling %d — preconditioned Krylov must not lose",
			row.Problem, row.ItersPCG, row.ItersCycle)
		checkf(row.SolveNSCycle > 0 && row.SolveNSPCG > 0,
			"%s: missing solve timings (%d, %d)", row.Problem, row.SolveNSCycle, row.SolveNSPCG)
	}
	cd := rep.ConvDiff
	checkf(cd.Rows > 0, "conv-diff row missing")
	checkf(cd.CycleStalled,
		"conv-diff beta=%.0f: plain cycling reached %.3e within %d cycles — the stall premise no longer holds",
		cd.Beta, cd.CycleRelRes, cd.Budget)
	checkf(cd.FGMRESConv,
		"conv-diff beta=%.0f: FGMRES did not converge in %d iterations", cd.Beta, cd.FGMRESIters)
	checkf(rep.PCGAllocsPerSolve == 0,
		"warm PCG solve allocates %.0f allocs, want 0", rep.PCGAllocsPerSolve)
	checkf(rep.FGMRESAllocsPerSolve == 0,
		"warm FGMRES solve allocates %.0f allocs, want 0", rep.FGMRESAllocsPerSolve)
	checkf(rep.BlockMatchesSolo, "block multi-RHS PCG is not bitwise identical to the solo solves")
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Printf("benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d krylov invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: ok   krylov: %d problems PCG <= cycling (tau %.0e), conv-diff beta=%.0f stalls cycling / FGMRES converges in %d, 0 allocs/solve, block == solo\n",
		len(rep.Rows), rep.Tau, cd.Beta, cd.FGMRESIters)
	return nil
}

// parse reads `go test -bench` output, returning one entry per benchmark
// plus the reported cpu line.
func parse(sc *bufio.Scanner) (map[string]entry, string, error) {
	out := map[string]entry{}
	cpu := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if strings.HasPrefix(line, "cpu:") {
			cpu = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := procsSuffix.ReplaceAllString(fields[0], "")
		var e entry
		// fields[1] is the iteration count; the rest are value/unit pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, "", fmt.Errorf("bad value %q in line %q", fields[i], line)
			}
			switch fields[i+1] {
			case "ns/op":
				e.NsPerOp = v
			case "allocs/op":
				e.AllocsPerOp = v
			case "B/op":
				e.BytesPerOp = v
			}
		}
		out[name] = e
	}
	return out, cpu, sc.Err()
}

// checkStencil enforces the matrix-free kernel invariants on a
// `go test -bench 'StencilApply|MixedPrecisionCycle'` run: every stencil
// and mixed-precision benchmark is allocation-free, and the stencil apply
// beats the assembled CSR SpMV on row throughput by the per-stencil floor
// (both benchmarks sweep the same rows, so the throughput ratio is the
// inverse time ratio).
func checkStencil(sc *bufio.Scanner, min7, min27 float64) error {
	run, _, err := parse(sc)
	if err != nil {
		return err
	}
	if len(run) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	var fails []string
	checkf := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	for name, e := range run {
		if strings.Contains(name, "StencilApply") || strings.Contains(name, "MixedPrecisionCycle") {
			checkf(e.AllocsPerOp == 0, "%s: %.0f allocs/op, want 0", name, e.AllocsPerOp)
		}
	}
	for _, tc := range []struct {
		problem string
		floor   float64
	}{
		{"7pt", min7},
		{"27pt", min27},
	} {
		csr, okC := run["BenchmarkStencilApply/"+tc.problem+"/csr"]
		st, okS := run["BenchmarkStencilApply/"+tc.problem+"/stencil"]
		checkf(okC && okS, "%s: missing StencilApply csr/stencil pair", tc.problem)
		if okC && okS && st.NsPerOp > 0 {
			speedup := csr.NsPerOp / st.NsPerOp
			checkf(speedup >= tc.floor, "%s: stencil apply %.2fx CSR row throughput, want >= %.2fx",
				tc.problem, speedup, tc.floor)
		}
	}
	if _, ok := run["BenchmarkMixedPrecisionCycle/f64"]; !ok {
		checkf(false, "missing MixedPrecisionCycle/f64 benchmark")
	}
	if _, ok := run["BenchmarkMixedPrecisionCycle/f32-coarse"]; !ok {
		checkf(false, "missing MixedPrecisionCycle/f32-coarse benchmark")
	}
	if len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintf(os.Stderr, "benchguard: FAIL %s\n", f)
		}
		return fmt.Errorf("%d stencil invariant(s) violated", len(fails))
	}
	fmt.Printf("benchguard: stencil invariants hold (%d benchmarks)\n", len(run))
	return nil
}
