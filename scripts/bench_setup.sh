#!/bin/sh
# Regenerate BENCH_setup.json, the setup-phase benchmark baseline enforced
# by CI (benchguard fails the build when allocs/op regresses above it).
set -eu
cd "$(dirname "$0")/.."
go test -run '^$' -bench '^BenchmarkSetup$' -benchtime 20x . |
	go run ./scripts/benchguard -write BENCH_setup.json
