#!/bin/sh
# Regenerate every table and figure of the paper's evaluation into
# results/. Scaled defaults finish in minutes on one core; pass larger
# -size/-runs/-threads through the environment variables below for
# paper-scale runs on real hardware.
set -eu
cd "$(dirname "$0")/.."
RUNS="${RUNS:-5}"
mkdir -p results

echo "== Figures 1-2 (Section III model simulations) =="
go run ./cmd/mgsim -fig 1 -runs "$RUNS" | tee results/fig1.txt
go run ./cmd/mgsim -fig 2 -runs "$RUNS" | tee results/fig2.txt
go run ./cmd/mgsim -fault | tee results/fault.txt

echo "== Figures 4-6 and Table I (parallel solvers) =="
go run ./cmd/mgbench -fig 4   | tee results/fig4.txt
go run ./cmd/mgbench -fig 5   | tee results/fig5.txt
go run ./cmd/mgbench -table 1 | tee results/table1.txt
go run ./cmd/mgbench -fig 6   | tee results/fig6.txt

echo "== Benchmarks (one per table/figure + ablations) =="
go test -bench=. -benchmem . | tee results/bench.txt

{
	echo "ok"
	go version
	date -u "+%Y-%m-%dT%H:%M:%SZ"
} > results/status.txt
echo "All outputs written to results/."
