#!/bin/sh
# Regenerate BENCH_async.json, the asynchronous stability-map baseline
# enforced by CI: benchguard -async fails the build when a (scenario,
# policy) cell's outcome regresses below it, or when fewer than three
# scenarios that roll back undamped are rescued by the adaptive policy.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mgsim -staleness -out BENCH_async.json
go run ./scripts/benchguard -async BENCH_async.json
