#!/bin/sh
# Regenerate BENCH_krylov.json, the AMG-preconditioned Krylov report
# enforced by CI: benchguard -krylov fails the build when PCG needs more
# iterations than plain cycling on any paper matrix, when plain Mult
# cycling stops stalling (or FGMRES stops converging) on the strong
# convection-diffusion operator, when a warm Krylov solve allocates, or
# when the block multi-RHS PCG diverges bitwise from the solo solves.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mgbench -krylov -out BENCH_krylov.json
go run ./scripts/benchguard -krylov BENCH_krylov.json
