#!/bin/sh
# Regenerate BENCH_cluster.json, the cluster-tier benchmark: the load
# generator drives an in-process 3-node fleet (RF=2) behind the chaos
# transport through the fault acceptance schedule — warmup, steady
# state, kill mid-load, restart with an empty cache, a straggling node,
# and a drain mid-load — and records QPS/latency per phase plus the
# routing counters; benchguard -cluster then enforces the structural
# invariants (zero failed requests, hedges covering the straggler, ring
# rebuilds on every membership change, replication keeping the restart
# phase cache-hot).
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mgserve -cluster-loadgen -out BENCH_cluster.json "$@"
go run ./scripts/benchguard -cluster BENCH_cluster.json
