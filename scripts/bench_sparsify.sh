#!/bin/sh
# Regenerate BENCH_sparsify.json, the coarse-operator sparsification
# report enforced by CI: benchguard -sparsify fails the build when the
# total coarse-nnz reduction drops below 25%, any problem needs more
# than one extra iteration over the golden run, the guard reverts every
# candidate level, or the kernel loses its 0 allocs/op contract.
set -eu
cd "$(dirname "$0")/.."
go run ./cmd/mgbench -sparsify -out BENCH_sparsify.json
go run ./scripts/benchguard -sparsify BENCH_sparsify.json
