package asyncmg_test

import (
	"fmt"
	"testing"

	"asyncmg"
	"asyncmg/internal/harness"
)

// The damped histories below were recorded at %.17g from SolveSyncDamped
// at ω = 0.7 on the four paper matrices (RHS seed 11, WJacobi at each
// problem's default smoothing weight, 8 cycles). They pin the damped
// correction path: the ω-scaling of the level corrections must stay
// exactly where it is in the cycle (after smoothing/coarse solve, before
// prolongation) and must keep scaling only the additive correction, not
// the smoothed iterate. ω = 1 is additionally pinned bit-for-bit against
// the undamped solver, so the damped variant can never drift from the
// goldens that TestGoldenEquivalence enforces.
type dampedGolden struct {
	name string
	size int
	// Serial damped histories at ω = 0.7, 9 entries (index 0 is 1.0).
	dampedMultadd, dampedAFACx []float64
}

var dampedGoldens = []dampedGolden{
	{
		name: harness.Problem7pt, size: 14,
		dampedMultadd: []float64{1, 0.43010777771837211, 0.25055618145002523,
			0.16449447554888058, 0.1154608260121268, 0.084525716922236413,
			0.063604860033566607, 0.048793436368898976, 0.037974405793602117},
		dampedAFACx: []float64{1, 0.4235761222906046, 0.24635797869493933,
			0.1629407154523497, 0.11529169579653616, 0.084905680994906793,
			0.064202485740331383, 0.049483111703216835, 0.038705129114976297},
	},
	{
		name: harness.Problem27pt, size: 10,
		dampedMultadd: []float64{1, 0.38250331483803779, 0.17443887915363879,
			0.09574659616112019, 0.060243507574976395, 0.040986882253667756,
			0.029111187146162225, 0.021218011856677332, 0.015734643104713165},
		dampedAFACx: []float64{1, 0.38116106010154371, 0.17322629724891825,
			0.094824599173229149, 0.059512875674664088, 0.04039180764899987,
			0.028634481164445353, 0.020849082793490906, 0.015459555340388637},
	},
	{
		name: harness.ProblemLaplaceFEM, size: 8,
		dampedMultadd: []float64{1, 0.63854466872901894, 0.4648540474274096,
			0.3626432257385106, 0.29430296687408719, 0.24489524953068598,
			0.20734976648868361, 0.17783769780782777, 0.15407065108091966},
		dampedAFACx: []float64{1, 0.6379193477784173, 0.47082208585309715,
			0.3686506912776894, 0.29951920988689823, 0.24959490471367446,
			0.21177264602314494, 0.18209979314842695, 0.1582179278551992},
	},
	{
		name: harness.ProblemElasticity, size: 3,
		dampedMultadd: []float64{1, 0.68522876318002979, 0.55787982080609644,
			0.48382105620163834, 0.43229673420096892, 0.39283458096581542,
			0.36103658759930524, 0.33468461946585276, 0.31247097575187288},
		dampedAFACx: []float64{1, 0.7127078530075025, 0.57727351319921216,
			0.4952391733050861, 0.43747134238459218, 0.39394833713739852,
			0.35973960460424154, 0.33204705197033696, 0.30913719923714372},
	},
}

// TestDampedGolden pins the serial damped cycle on all four paper
// matrices: the ω = 0.7 histories against the recorded literals, and
// ω = 1 bit-for-bit against the undamped solver. The team solver with a
// fixed policy must reproduce the serial damped history under Sync mode
// (barrier order makes it deterministic; tiny reduction-order slack).
func TestDampedGolden(t *testing.T) {
	const omega = 0.7
	const teamRelTol = 1e-9
	for _, g := range dampedGoldens {
		t.Run(g.name, func(t *testing.T) {
			a, err := harness.BuildProblem(g.name, g.size)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			opt := asyncmg.DefaultAMGOptions()
			if g.name == harness.ProblemElasticity {
				opt.NumFunctions = 3
			}
			smo := asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: harness.DefaultOmega(g.name), Blocks: 1}
			s, err := asyncmg.NewSetup(a, opt, smo)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			b := asyncmg.RandomRHS(a.Rows, 11)
			for _, mc := range []struct {
				m    asyncmg.Method
				want []float64
			}{
				{asyncmg.Multadd, g.dampedMultadd},
				{asyncmg.AFACx, g.dampedAFACx},
			} {
				x1, h1 := asyncmg.SolveSync(s, mc.m, b, 8)
				xd, hd := asyncmg.SolveSyncDamped(s, mc.m, b, 8, 1)
				for i := range x1 {
					if xd[i] != x1[i] {
						t.Fatalf("%v: ω=1 damped solve diverges bitwise from undamped at x[%d]: %g vs %g",
							mc.m, i, xd[i], x1[i])
					}
				}
				for i := range h1 {
					if hd[i] != h1[i] {
						t.Fatalf("%v: ω=1 damped history differs at cycle %d: %.17g vs %.17g",
							mc.m, i, hd[i], h1[i])
					}
				}

				_, hist := asyncmg.SolveSyncDamped(s, mc.m, b, 8, omega)
				checkGoldenHistory(t, fmt.Sprintf("damped %v", mc.m), hist, mc.want)

				res, err := asyncmg.SolveAsync(s, b, asyncmg.AsyncConfig{
					Method: mc.m, Sync: true, Threads: s.NumLevels(),
					MaxCycles: 8, RecordHistory: true,
					Damping: asyncmg.DampingPolicy{Mode: asyncmg.DampFixed, Omega: omega},
				})
				if err != nil {
					t.Fatalf("team damped %v: %v", mc.m, err)
				}
				if len(res.History) != len(mc.want) {
					t.Fatalf("team damped %v: history length %d, want %d", mc.m, len(res.History), len(mc.want))
				}
				for i := range mc.want {
					if e := relErr(res.History[i], mc.want[i]); e > teamRelTol {
						t.Errorf("team damped %v cycle %d: got %.17g, want %.17g (rel err %.3g)",
							mc.m, i, res.History[i], mc.want[i], e)
					}
				}
			}
		})
	}
}
