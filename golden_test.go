package asyncmg_test

import (
	"fmt"
	"math"
	"testing"

	"asyncmg"
	"asyncmg/internal/harness"
)

// The histories below were recorded on the pre-engine implementation (the
// per-package cycle and correction code that commit replaced) at %.17g, so
// they pin the refactor to the seed semantics: the shared engine, its fused
// kernels, and the Site-based correction must reproduce the same arithmetic.
// The comparison tolerance of 1e-12 (relative) leaves room only for
// rounding-level reassociation; any structural change to the cycle math
// shows up as a many-orders-of-magnitude violation.
const goldenRelTol = 1e-12

type goldenProblem struct {
	name    string
	build   func() *asyncmg.Matrix
	rhsSeed int64
	// sizes pins the AMG hierarchy the goldens were recorded on.
	sizes []int
	// sync histories, 8 cycles each (index 0 is 1.0).
	mult, multadd, afacx []float64
	// sync team solver histories (async.Solve with Sync, one thread/grid).
	asyncMultadd, asyncAFACx []float64
	// model final relative residuals (α=1, δ=0, Updates 8, Seed 3).
	modelSemiMultadd, modelFullAFACx float64
}

var goldens = []goldenProblem{
	{
		name:    "27pt-n10",
		build:   func() *asyncmg.Matrix { return asyncmg.Laplacian27pt(10) },
		rhsSeed: 42,
		sizes:   []int{1000, 17},
		mult: []float64{1, 0.071723854007433446, 0.025068294971635839, 0.011451505873023952,
			0.0057629315119673971, 0.003006812014526562, 0.001593054805810504,
			0.00085068524844800002, 0.00045648545084044681},
		multadd: []float64{1, 0.16788867303327359, 0.07168466465022022, 0.039642331674346817,
			0.024358561383322375, 0.015910927772835967, 0.010785399596977033,
			0.0074775112457623168, 0.0052564591770559287},
		afacx: []float64{1, 0.16761127540107731, 0.072270002951756188, 0.040504492452352284,
			0.025157008757426474, 0.016618173847920803, 0.01139426574198954,
			0.007990797811297563, 0.0056807826291662526},
		asyncMultadd: []float64{1, 0.16788867303327368, 0.071684664650220262, 0.039642331674346852,
			0.024358561383322371, 0.015910927772835974, 0.010785399596977026,
			0.0074775112457623246, 0.0052564591770559331},
		asyncAFACx: []float64{1, 0.16761127540107748, 0.072270002951756146, 0.040504492452352325,
			0.025157008757426481, 0.016618173847920803, 0.011394265741989533,
			0.0079907978112975734, 0.0056807826291662587},
		modelSemiMultadd: 0.0052564591770559287,
		modelFullAFACx:   0.005680782629166263,
	},
	{
		name:    "7pt-n14",
		build:   func() *asyncmg.Matrix { return asyncmg.Laplacian7pt(14) },
		rhsSeed: 7,
		sizes:   []int{2744, 190, 38},
		mult: []float64{1, 0.19362368330302496, 0.081315148505517645, 0.040670379624396111,
			0.022096501856291712, 0.012612258891642259, 0.0074306324898452264,
			0.0044714853731914923, 0.0027304910072345817},
		multadd: []float64{1, 0.35992097549602536, 0.19008826280072222, 0.11702167104565561,
			0.075159073262920512, 0.050838798075802848, 0.034697793340982747,
			0.024383365158504467, 0.017205497959856257},
		afacx: []float64{1, 0.35897302440162959, 0.18540806325666537, 0.11451734103760945,
			0.073589084380576625, 0.050076588240673681, 0.034469411705692538,
			0.024490007794859187, 0.017473107548871037},
		asyncMultadd: []float64{1, 0.35992097549602525, 0.19008826280072247, 0.11702167104565557,
			0.075159073262920428, 0.050838798075802848, 0.034697793340982809,
			0.024383365158504467, 0.01720549795985624},
		asyncAFACx: []float64{1, 0.35897302440162937, 0.18540806325666551, 0.11451734103760923,
			0.073589084380576611, 0.050076588240673736, 0.034469411705692524,
			0.024490007794859155, 0.017473107548871027},
		modelSemiMultadd: 0.017205497959856243,
		modelFullAFACx:   0.01747310754887103,
	},
}

func checkGoldenHistory(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Errorf("%s: history length %d, want %d", label, len(got), len(want))
		return
	}
	for i := range want {
		if err := relErr(got[i], want[i]); err > goldenRelTol {
			t.Errorf("%s: cycle %d: got %.17g, want %.17g (rel err %.3g)", label, i, got[i], want[i], err)
		}
	}
}

func relErr(got, want float64) float64 {
	d := math.Abs(got - want)
	if want == 0 {
		return d
	}
	return d / math.Abs(want)
}

// TestGoldenEquivalence verifies that the engine-backed solvers reproduce
// the pre-refactor residual histories: sequential mg (Mult/Multadd/AFACx),
// the synchronous team solver, and the §III model at α=1, δ=0 (where the
// model reduces to the synchronous additive iteration).
// TestMixedPrecisionGolden pins the float32 coarse hierarchy to the
// float64 goldens on all four paper matrices: the storage change must not
// alter the algorithm. Every method runs the same number of cycles in
// both precisions (identical iteration structure) and each per-cycle
// relative residual stays within 1e-6 of the float64 history — single
// precision on the coarse levels perturbs at rounding level, far below
// the convergence factors being reproduced.
func TestMixedPrecisionGolden(t *testing.T) {
	const f32RelTol = 1e-6
	problems := []struct {
		name string
		size int
	}{
		{harness.Problem7pt, 14},
		{harness.Problem27pt, 10},
		{harness.ProblemLaplaceFEM, 8},
		{harness.ProblemElasticity, 3},
	}
	for _, p := range problems {
		t.Run(p.name, func(t *testing.T) {
			a, err := harness.BuildProblem(p.name, p.size)
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			opt := asyncmg.DefaultAMGOptions()
			if p.name == harness.ProblemElasticity {
				opt.NumFunctions = 3
			}
			smo := asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: harness.DefaultOmega(p.name), Blocks: 1}
			s64, err := asyncmg.NewSetup(a, opt, smo)
			if err != nil {
				t.Fatalf("float64 setup: %v", err)
			}
			opt32 := opt
			opt32.CoarsePrecision = asyncmg.CoarseFloat32
			s32, err := asyncmg.NewSetup(a, opt32, smo)
			if err != nil {
				t.Fatalf("float32 setup: %v", err)
			}
			if g64, g32 := s64.NumLevels(), s32.NumLevels(); g64 != g32 {
				t.Fatalf("precision changed the hierarchy: %d levels vs %d", g64, g32)
			}
			if b64, b32 := s64.HierarchyBytes(), s32.HierarchyBytes(); b32 >= b64 {
				t.Errorf("float32 hierarchy is not smaller: %d B vs %d B", b32, b64)
			}
			b := asyncmg.RandomRHS(a.Rows, 11)
			for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx} {
				_, h64 := asyncmg.SolveSync(s64, m, b, 8)
				_, h32 := asyncmg.SolveSync(s32, m, b, 8)
				if len(h64) != len(h32) {
					t.Fatalf("%v: iteration counts differ: %d vs %d cycles", m, len(h64)-1, len(h32)-1)
				}
				for i := range h64 {
					if err := relErr(h32[i], h64[i]); err > f32RelTol {
						t.Errorf("%v cycle %d: float32 %.17g vs float64 %.17g (rel err %.3g)",
							m, i, h32[i], h64[i], err)
					}
				}
			}
		})
	}
}

func TestGoldenEquivalence(t *testing.T) {
	smo := asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.9, Blocks: 1}
	for _, g := range goldens {
		t.Run(g.name, func(t *testing.T) {
			a := g.build()
			b := asyncmg.RandomRHS(a.Rows, g.rhsSeed)
			s, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), smo)
			if err != nil {
				t.Fatalf("setup: %v", err)
			}
			if s.NumLevels() != len(g.sizes) {
				t.Fatalf("hierarchy changed: %d levels, goldens recorded on %d — re-record goldens", s.NumLevels(), len(g.sizes))
			}
			for k, want := range g.sizes {
				if got := s.LevelSize(k); got != want {
					t.Fatalf("hierarchy changed: level %d has %d rows, goldens recorded on %d — re-record goldens", k, got, want)
				}
			}

			for _, mc := range []struct {
				m    asyncmg.Method
				want []float64
			}{
				{asyncmg.Mult, g.mult},
				{asyncmg.Multadd, g.multadd},
				{asyncmg.AFACx, g.afacx},
			} {
				_, hist := asyncmg.SolveSync(s, mc.m, b, 8)
				checkGoldenHistory(t, fmt.Sprintf("sync %v", mc.m), hist, mc.want)
			}

			for _, mc := range []struct {
				m    asyncmg.Method
				want []float64
			}{
				{asyncmg.Multadd, g.asyncMultadd},
				{asyncmg.AFACx, g.asyncAFACx},
			} {
				res, err := asyncmg.SolveAsync(s, b, asyncmg.AsyncConfig{
					Method: mc.m, Sync: true, Threads: s.NumLevels(),
					MaxCycles: 8, RecordHistory: true,
				})
				if err != nil {
					t.Fatalf("async sync %v: %v", mc.m, err)
				}
				checkGoldenHistory(t, fmt.Sprintf("team sync %v", mc.m), res.History, mc.want)
			}

			semi, err := asyncmg.SimulateModel(s, b, asyncmg.ModelConfig{
				Variant: asyncmg.SemiAsync, Method: asyncmg.Multadd,
				Alpha: 1, Delta: 0, Updates: 8, Seed: 3,
			})
			if err != nil {
				t.Fatalf("model semi-async: %v", err)
			}
			if err := relErr(semi.RelRes, g.modelSemiMultadd); err > goldenRelTol {
				t.Errorf("model semi-async multadd: got %.17g, want %.17g (rel err %.3g)",
					semi.RelRes, g.modelSemiMultadd, err)
			}
			full, err := asyncmg.SimulateModel(s, b, asyncmg.ModelConfig{
				Variant: asyncmg.FullAsyncSolution, Method: asyncmg.AFACx,
				Alpha: 1, Delta: 0, Updates: 8, Seed: 3,
			})
			if err != nil {
				t.Fatalf("model full-async: %v", err)
			}
			if err := relErr(full.RelRes, g.modelFullAFACx); err > goldenRelTol {
				t.Errorf("model full-async afacx: got %.17g, want %.17g (rel err %.3g)",
					full.RelRes, g.modelFullAFACx, err)
			}
		})
	}
}
