package asyncmg_test

import (
	"math"
	"testing"

	"asyncmg"
	"asyncmg/internal/vec"
)

// upwindConvectionDiffusion7pt assembles the 3D convection-diffusion
// operator -Δu + β·∇u on an n³ grid with first-order upwind differences
// for the convection term (flow along +x, +y). The upwind bias makes the
// matrix genuinely non-symmetric while keeping it an M-matrix, so the
// hierarchy build and the smoothers stay well-posed.
func upwindConvectionDiffusion7pt(n int, beta float64) *asyncmg.Matrix {
	idx := func(i, j, k int) int { return (i*n+j)*n + k }
	coo := asyncmg.NewCOO(n*n*n, n*n*n, 9*n*n*n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				row := idx(i, j, k)
				diag := 6.0 + 2*beta // diffusion + upwind convection in x and y
				if i > 0 {
					coo.Add(row, idx(i-1, j, k), -1-beta) // upwind neighbor
				}
				if i < n-1 {
					coo.Add(row, idx(i+1, j, k), -1)
				}
				if j > 0 {
					coo.Add(row, idx(i, j-1, k), -1-beta)
				}
				if j < n-1 {
					coo.Add(row, idx(i, j+1, k), -1)
				}
				if k > 0 {
					coo.Add(row, idx(i, j, k-1), -1)
				}
				if k < n-1 {
					coo.Add(row, idx(i, j, k+1), -1)
				}
				coo.Add(row, row, diag)
			}
		}
	}
	return coo.ToCSR()
}

// TestNonSymmetricCycleMatchesFacade drives the engine's cycle primitives
// by hand on a non-symmetric upwind convection-diffusion setup and checks
// the iterate and residual history agree with the façade's SolveSync to
// 1e-12 for AFACx and Multadd — guarding the shared cycle engine against
// symmetric-only assumptions and façade/primitive drift.
func TestNonSymmetricCycleMatchesFacade(t *testing.T) {
	a := upwindConvectionDiffusion7pt(9, 0.8)
	if a.IsSymmetric(1e-14) {
		t.Fatal("test operator is symmetric; upwind bias lost")
	}
	s, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatalf("setup: %v", err)
	}
	if s.NumLevels() < 2 {
		t.Fatalf("want a multilevel hierarchy, got %d levels", s.NumLevels())
	}
	b := asyncmg.RandomRHS(a.Rows, 11)
	nb := vec.Norm2(b)
	const tmax = 12
	for _, m := range []asyncmg.Method{asyncmg.Multadd, asyncmg.AFACx} {
		x, hist := asyncmg.SolveSync(s, m, b, tmax)
		if len(hist) != tmax+1 {
			t.Fatalf("%v: façade stopped early (history length %d)", m, len(hist))
		}
		if hist[tmax] >= hist[0] {
			t.Fatalf("%v does not converge on the non-symmetric operator: rel res %v after %d cycles",
				m, hist[tmax], tmax)
		}

		// Hand-driven engine primitives: same cycles, same workspace pool.
		got := make([]float64, a.Rows)
		r := make([]float64, a.Rows)
		w := s.AcquireWorkspace()
		for c := 0; c < tmax; c++ {
			s.Cycle(m, got, b, w)
			a.Residual(r, b, got)
			rel := vec.Norm2(r) / nb
			if d := math.Abs(rel - hist[c+1]); d > 1e-12*math.Max(1, hist[c+1]) {
				t.Fatalf("%v cycle %d: hand-driven rel res %v vs façade %v (|Δ| = %g)",
					m, c+1, rel, hist[c+1], d)
			}
		}
		s.ReleaseWorkspace(w)
		for i := range x {
			if d := math.Abs(got[i] - x[i]); d > 1e-12*math.Max(1, math.Abs(x[i])) {
				t.Fatalf("%v iterate differs at %d: %v vs %v", m, i, got[i], x[i])
			}
		}
	}
}
