package asyncmg_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"

	"asyncmg"
)

// These tests exercise the public façade end to end, the way a downstream
// user would: generate or load a problem, set up, solve with each solver
// family, and check the numbers.

func TestPublicQuickstartFlow(t *testing.T) {
	a := asyncmg.Laplacian27pt(8)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 1)
	res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
		Method: asyncmg.Multadd, Write: asyncmg.AtomicWrite, Res: asyncmg.LocalRes,
		Criterion: asyncmg.Criterion1, Threads: 6, MaxCycles: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.RelRes > 1e-4 {
		t.Errorf("quickstart solve: relres %g diverged=%v", res.RelRes, res.Diverged)
	}
}

func TestPublicSyncSolvers(t *testing.T) {
	a := asyncmg.Laplacian7pt(8)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 2)
	for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx} {
		_, hist := asyncmg.SolveSync(setup, m, b, 100)
		if hist[len(hist)-1] > 1e-6 {
			t.Errorf("%v: relres %g after 100 cycles", m, hist[len(hist)-1])
		}
	}
}

func TestPublicFEMFlow(t *testing.T) {
	mesh := asyncmg.BallMesh(6)
	prob, err := asyncmg.AssembleLaplace(mesh)
	if err != nil {
		t.Fatal(err)
	}
	opt := asyncmg.DefaultAMGOptions()
	opt.AggressiveLevels = 0
	setup, err := asyncmg.NewSetup(prob.A, opt,
		asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.5, Blocks: 1})
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(prob.A.Rows, 3)
	x, hist := asyncmg.SolveSync(setup, asyncmg.Mult, b, 60)
	if hist[len(hist)-1] > 1e-6 {
		t.Errorf("FEM Mult relres %g", hist[len(hist)-1])
	}
	full := prob.Expand(x)
	if len(full) != len(mesh.Nodes) {
		t.Errorf("Expand length %d, want %d", len(full), len(mesh.Nodes))
	}
}

func TestPublicModelFlow(t *testing.T) {
	a := asyncmg.Laplacian27pt(6)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 4)
	res, err := asyncmg.SimulateModel(setup, b, asyncmg.ModelConfig{
		Variant: asyncmg.FullAsyncResidual, Method: asyncmg.AFACx,
		Alpha: 0.3, Delta: 4, Updates: 15, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.RelRes > 0.5 {
		t.Errorf("model made no progress: %g", res.RelRes)
	}
}

func TestPublicPCGFlow(t *testing.T) {
	a := asyncmg.Laplacian7pt(8)
	opt := asyncmg.DefaultAMGOptions()
	opt.AggressiveLevels = 0
	setup, err := asyncmg.NewSetup(a, opt, asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 5)
	cgOpt := asyncmg.DefaultCGOptions()
	cgOpt.M = asyncmg.NewMGPreconditioner(setup, asyncmg.BPX)
	res, err := asyncmg.SolveCG(a, b, cgOpt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Converged || res.Iterations > 40 {
		t.Errorf("BPX-PCG: converged=%v its=%d", res.Converged, res.Iterations)
	}
}

func TestPublicDistributedFlow(t *testing.T) {
	a := asyncmg.Laplacian7pt(8)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 6)
	res, err := asyncmg.SolveDistributed(setup, b, asyncmg.DistConfig{
		Method: asyncmg.Multadd, MaxCorrections: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.RelRes > 1e-3 {
		t.Errorf("distributed relres %g", res.RelRes)
	}
}

func TestPublicMatrixMarketRoundTrip(t *testing.T) {
	a := asyncmg.Laplacian7pt(4)
	var buf bytes.Buffer
	if err := asyncmg.WriteMatrixMarket(&buf, a); err != nil {
		t.Fatal(err)
	}
	back, err := asyncmg.ReadMatrixMarket(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NNZ() != a.NNZ() || back.Rows != a.Rows {
		t.Error("round trip changed the matrix")
	}
	// The re-read matrix is directly usable by the solvers.
	setup, err := asyncmg.NewSetup(back, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(back.Rows, 7)
	_, hist := asyncmg.SolveSync(setup, asyncmg.Mult, b, 30)
	if hist[len(hist)-1] > 1e-6 {
		t.Errorf("solve on re-read matrix: %g", hist[len(hist)-1])
	}
}

func TestPublicCOOAssembly(t *testing.T) {
	coo := asyncmg.NewCOO(3, 3, 9)
	for i := 0; i < 3; i++ {
		coo.Add(i, i, 2)
		if i > 0 {
			coo.Add(i, i-1, -1)
			coo.Add(i-1, i, -1)
		}
	}
	a := coo.ToCSR()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	if !a.IsSymmetric(0) {
		t.Error("assembled matrix not symmetric")
	}
}

func TestPublicProblemRegistry(t *testing.T) {
	names := asyncmg.ProblemNames()
	if len(names) != 4 {
		t.Fatalf("problem families = %v", names)
	}
	for _, name := range names {
		size := 4
		if name == "mfem-elasticity" {
			size = 2
		}
		a, err := asyncmg.BuildProblem(name, size)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		if a.Rows == 0 {
			t.Errorf("%s: empty matrix", name)
		}
	}
}

func TestPublicHierarchyIntrospection(t *testing.T) {
	a := asyncmg.Laplacian7pt(8)
	h, err := asyncmg.BuildHierarchy(a, asyncmg.DefaultAMGOptions())
	if err != nil {
		t.Fatal(err)
	}
	sizes := h.GridSizes()
	if len(sizes) < 2 || sizes[0] != a.Rows {
		t.Errorf("GridSizes = %v", sizes)
	}
	if oc := h.OperatorComplexity(); oc < 1 || math.IsNaN(oc) {
		t.Errorf("operator complexity %v", oc)
	}
	setup, err := asyncmg.NewSetupFromHierarchy(h, asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	if setup.NumLevels() != h.NumLevels() {
		t.Error("setup levels disagree with hierarchy")
	}
}

func TestPublicSpectralDiagnostics(t *testing.T) {
	a := asyncmg.Laplacian7pt(5)
	scale, err := asyncmg.SmootherScaling(a, asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	rho, err := asyncmg.AsyncSmootherRadius(a, scale)
	if err != nil {
		t.Fatal(err)
	}
	if rho >= 1 || rho <= 0 {
		t.Errorf("rho(|G|) = %v, want in (0, 1)", rho)
	}
	if r, err := asyncmg.SpectralRadius(a, 1e-10, 5000); err != nil || r <= 0 {
		t.Errorf("SpectralRadius: %v, %v", r, err)
	}
}

func TestPublicRugeStubenOption(t *testing.T) {
	a := asyncmg.Laplacian7pt(6)
	opt := asyncmg.DefaultAMGOptions()
	opt.Coarsening = asyncmg.RugeStuben
	opt.AggressiveLevels = 0
	setup, err := asyncmg.NewSetup(a, opt, asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 8)
	_, hist := asyncmg.SolveSync(setup, asyncmg.Mult, b, 30)
	if hist[len(hist)-1] > 1e-8 {
		t.Errorf("RS hierarchy Mult relres %g", hist[len(hist)-1])
	}
}

func TestPublicSyncHistory(t *testing.T) {
	a := asyncmg.Laplacian7pt(6)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 9)
	res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
		Method: asyncmg.Multadd, Sync: true, Write: asyncmg.LockWrite,
		Threads: 4, MaxCycles: 8, RecordHistory: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.History) != 9 || res.History[0] != 1 {
		t.Errorf("history %v", res.History)
	}
}

func TestPublicChaoticRelaxation(t *testing.T) {
	a := asyncmg.Laplacian7pt(5)
	b := asyncmg.RandomRHS(a.Rows, 10)
	res, err := asyncmg.SolveChaotic(a, b, asyncmg.ChaoticConfig{
		Processes: 4, Sweeps: 300, Omega: 0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Diverged || res.RelRes > 1e-5 {
		t.Errorf("chaotic relaxation relres %g", res.RelRes)
	}
}

func TestPublicSolveSyncCtxAndBlock(t *testing.T) {
	a := asyncmg.Laplacian7pt(6)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		t.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 3)
	refX, refH := asyncmg.SolveSync(setup, asyncmg.Mult, b, 10)
	x, hist, err := asyncmg.SolveSyncCtx(context.Background(), setup, asyncmg.Mult, b, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refH {
		if hist[i] != refH[i] {
			t.Fatalf("SolveSyncCtx hist[%d] = %v, want %v", i, hist[i], refH[i])
		}
	}
	for i := range refX {
		if x[i] != refX[i] {
			t.Fatalf("SolveSyncCtx x[%d] = %v, want %v", i, x[i], refX[i])
		}
	}
	// A block of two right-hand sides, column 0 = b: bitwise identical to
	// the single-RHS solve, column by column.
	const k = 2
	b2 := asyncmg.RandomRHS(a.Rows, 4)
	blk := make([]float64, a.Rows*k)
	for i := 0; i < a.Rows; i++ {
		blk[i*k] = b[i]
		blk[i*k+1] = b2[i]
	}
	bx, hists, err := asyncmg.SolveSyncBlock(context.Background(), setup, asyncmg.Mult, blk, k, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refH {
		if hists[0][i] != refH[i] {
			t.Fatalf("block hist[0][%d] = %v, want %v", i, hists[0][i], refH[i])
		}
	}
	for i := range refX {
		if bx[i*k] != refX[i] {
			t.Fatalf("block x[%d] = %v, want %v", i, bx[i*k], refX[i])
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := asyncmg.SolveSyncCtx(ctx, setup, asyncmg.Mult, b, 10); err != context.Canceled {
		t.Fatalf("cancelled SolveSyncCtx error = %v, want context.Canceled", err)
	}
}

func TestPublicSolverServer(t *testing.T) {
	srv := asyncmg.NewSolverServer(asyncmg.ServeConfig{Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	body, _ := json.Marshal(asyncmg.ServeSolveRequest{
		Problem: "7pt", Size: 5, Method: "mult", Cycles: 8,
	})
	resp, err := http.Post(ts.URL+"/solve", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var out asyncmg.ServeSolveResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if out.Rows != 125 || out.RelRes >= 1 || out.RelRes <= 0 {
		t.Errorf("served solve: rows=%d relres=%g", out.Rows, out.RelRes)
	}
}
