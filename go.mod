module asyncmg

go 1.22
