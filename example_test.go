package asyncmg_test

import (
	"fmt"

	"asyncmg"
)

// Example builds a small 3-D Poisson problem and solves it with the
// classical multiplicative V(1,1)-cycle.
func Example() {
	a := asyncmg.Laplacian7pt(8)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		panic(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 1)
	_, hist := asyncmg.SolveSync(setup, asyncmg.Mult, b, 40)
	fmt.Println(hist[len(hist)-1] < 1e-8)
	// Output: true
}

// ExampleSolveAsync runs the asynchronous additive solver: goroutine teams
// per grid, no global synchronization.
func ExampleSolveAsync() {
	a := asyncmg.Laplacian27pt(8)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		panic(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 1)
	res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
		Method:    asyncmg.Multadd,
		Write:     asyncmg.AtomicWrite,
		Res:       asyncmg.LocalRes,
		Criterion: asyncmg.Criterion1,
		Threads:   4,
		MaxCycles: 40,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.RelRes < 1e-4, res.Diverged)
	// Output: true false
}

// ExampleSimulateModel runs one semi-asynchronous model simulation
// (Equation 6 of the paper) and reports whether it converged as far as the
// synchronous method would.
func ExampleSimulateModel() {
	a := asyncmg.Laplacian27pt(6)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		panic(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 1)
	res, err := asyncmg.SimulateModel(setup, b, asyncmg.ModelConfig{
		Variant: asyncmg.SemiAsync,
		Method:  asyncmg.Multadd,
		Alpha:   0.5,
		Updates: 20,
		Seed:    7,
	})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.RelRes < 1e-2)
	// Output: true
}

// ExampleSolveCG demonstrates BPX as a PCG preconditioner.
func ExampleSolveCG() {
	a := asyncmg.Laplacian7pt(8)
	opt := asyncmg.DefaultAMGOptions()
	opt.AggressiveLevels = 0
	setup, err := asyncmg.NewSetup(a, opt, asyncmg.DefaultSmoother())
	if err != nil {
		panic(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 1)
	cg := asyncmg.DefaultCGOptions()
	cg.M = asyncmg.NewMGPreconditioner(setup, asyncmg.BPX)
	res, err := asyncmg.SolveCG(a, b, cg)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.Converged)
	// Output: true
}
