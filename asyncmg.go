// Package asyncmg is a from-scratch Go implementation of asynchronous
// additive multigrid methods, reproducing "Asynchronous Multigrid Methods"
// (Wolfson-Pou & Chow, 2019).
//
// The package provides:
//
//   - problem generators: 3-D Laplacians on 7-point and 27-point stencils,
//     and P1 tetrahedral FEM assemblies (Laplace on a ball, multi-material
//     linear elasticity on a cantilever beam);
//   - a classical AMG setup phase (strength of connection, PMIS/HMIS
//     coarsening with aggressive levels, classical-modified and multipass
//     interpolation, Galerkin products) standing in for BoomerAMG;
//   - four smoothers: weighted Jacobi, ℓ1-Jacobi, hybrid Jacobi-Gauss-Seidel
//     and asynchronous Gauss-Seidel;
//   - synchronous solvers: the multiplicative V(1,1)-cycle (Mult), the
//     additive Multadd and AFACx methods, and BPX;
//   - sequential simulation models of asynchronous multigrid (semi-async and
//     full-async, solution- and residual-based);
//   - a goroutine-team asynchronous runtime with the global-res and
//     local-res algorithms, lock-write and atomic-write modes, the
//     residual-based r-Multadd variant, and the paper's two stopping
//     criteria;
//   - an experiment harness that regenerates every table and figure of the
//     paper's evaluation;
//   - a solver service (cmd/mgserve) exposing the solvers over HTTP with
//     hierarchy caching, batched multi-RHS solves and admission control.
//
// # Quick start
//
//	a := asyncmg.Laplacian27pt(20)              // 8000-row Poisson problem
//	setup, _ := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
//	b := asyncmg.RandomRHS(a.Rows, 1)
//	res, _ := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
//	    Method:    asyncmg.Multadd,
//	    Write:     asyncmg.AtomicWrite,
//	    Res:       asyncmg.LocalRes,
//	    Threads:   8,
//	    MaxCycles: 30,
//	})
//	fmt.Println(res.RelRes)
//
// The subpackage structure is internal; everything a user needs is exported
// here via type aliases, so godoc for this one package documents the whole
// public surface.
package asyncmg

import (
	"context"
	"io"

	"asyncmg/internal/amg"
	"asyncmg/internal/async"
	"asyncmg/internal/chaotic"
	"asyncmg/internal/distmem"
	"asyncmg/internal/fault"
	"asyncmg/internal/fem"
	"asyncmg/internal/grid"
	"asyncmg/internal/harness"
	"asyncmg/internal/krylov"
	"asyncmg/internal/mg"
	"asyncmg/internal/model"
	"asyncmg/internal/mtx"
	"asyncmg/internal/obs"
	"asyncmg/internal/op"
	"asyncmg/internal/par"
	"asyncmg/internal/serve"
	"asyncmg/internal/smoother"
	"asyncmg/internal/sparse"
	"asyncmg/internal/spectral"
)

// ---- Parallel kernel configuration ----

// SetParallelKernels configures the shared worker pool behind the
// goroutine-sharded SpMV/residual/axpy/reduction kernels that the cycle
// engine runs on. workers is the pool size (0 restores GOMAXPROCS);
// threshold is the minimum work (nonzeros for matrix kernels, elements
// for vector kernels) below which kernels stay serial (0 restores the
// default). Sharded matrix kernels and axpys are bitwise-identical to
// their serial forms for any worker count; only reductions (dot/norm)
// can differ at rounding level.
func SetParallelKernels(workers, threshold int) {
	par.SetWorkers(workers)
	par.SetThreshold(threshold)
}

// ParallelKernelThreshold reports the current serial-fallback threshold.
func ParallelKernelThreshold() int { return par.Threshold() }

// ---- Sparse linear algebra ----

// Matrix is a sparse matrix in compressed sparse row format.
type Matrix = sparse.CSR

// COO is a coordinate-format assembly buffer convertible to a Matrix.
type COO = sparse.COO

// NewCOO returns an empty assembly buffer for a rows×cols matrix.
func NewCOO(rows, cols, nnzHint int) *COO { return sparse.NewCOO(rows, cols, nnzHint) }

// ---- Problem generators ----

// Laplacian7pt builds the 3-D 7-point Laplacian on an n×n×n grid (the
// paper's "7pt" test set).
func Laplacian7pt(n int) *Matrix { return grid.Laplacian7pt(n) }

// Laplacian27pt builds the 3-D 27-point Laplacian on an n×n×n grid (the
// paper's "27pt" test set).
func Laplacian27pt(n int) *Matrix { return grid.Laplacian27pt(n) }

// RandomRHS returns a right-hand side with entries uniform in [-1, 1],
// reproducible under seed (the paper's test protocol).
func RandomRHS(n int, seed int64) []float64 { return grid.RandomRHS(n, seed) }

// Mesh is a conforming tetrahedral mesh.
type Mesh = fem.Mesh

// FEMProblem is an assembled, Dirichlet-reduced linear system.
type FEMProblem = fem.Problem

// Material is an isotropic linear-elastic material (Young's modulus E,
// Poisson ratio Nu).
type Material = fem.Material

// BallMesh builds a tetrahedral mesh of the unit ball (the substitute for
// the paper's NURBS sphere).
func BallMesh(n int) *Mesh { return fem.BallMesh(n) }

// BeamMesh builds the multi-material cantilever beam mesh.
func BeamMesh(n int) *Mesh { return fem.BeamMesh(n) }

// BoxMesh builds a structured tetrahedral mesh of a box.
func BoxMesh(nx, ny, nz int, lx, ly, lz float64) *Mesh {
	return fem.BoxMesh(nx, ny, nz, lx, ly, lz)
}

// AssembleLaplace assembles the P1 stiffness matrix of -Δu with homogeneous
// Dirichlet conditions on the mesh's boundary nodes.
func AssembleLaplace(m *Mesh) (*FEMProblem, error) { return fem.AssembleLaplace(m) }

// AssembleElasticity assembles 3-D isotropic linear elasticity with clamped
// boundary nodes.
func AssembleElasticity(m *Mesh, mats []Material) (*FEMProblem, error) {
	return fem.AssembleElasticity(m, mats)
}

// DefaultBeamMaterials is the paper-style three-material beam configuration.
func DefaultBeamMaterials() []Material { return fem.DefaultBeamMaterials() }

// ---- AMG setup ----

// AMGOptions configures the algebraic multigrid setup phase.
type AMGOptions = amg.Options

// CoarsenMethod selects PMIS or HMIS coarsening.
type CoarsenMethod = amg.CoarsenMethod

// InterpType selects the interpolation scheme.
type InterpType = amg.InterpType

// Hierarchy is the output of the AMG setup.
type Hierarchy = amg.Hierarchy

// Coarsening methods and interpolation types (BoomerAMG-style options).
const (
	PMIS              = amg.PMIS
	HMIS              = amg.HMIS
	RugeStuben        = amg.RugeStuben
	ClassicalModified = amg.ClassicalModified
	DirectInterp      = amg.Direct
	MultipassInterp   = amg.Multipass
)

// DefaultAMGOptions mirrors the paper's BoomerAMG configuration: HMIS
// coarsening, classical modified interpolation, one aggressive level.
func DefaultAMGOptions() AMGOptions { return amg.DefaultOptions() }

// BuildHierarchy runs the AMG setup phase on a.
func BuildHierarchy(a *Matrix, opt AMGOptions) (*Hierarchy, error) { return amg.Build(a, opt) }

// SetupStats is the per-stage wall-time breakdown of one AMG setup
// (strength graph, coarsening, interpolation, Galerkin products, coarse
// factorization).
type SetupStats = amg.SetupStats

// BuildHierarchyWithStats is BuildHierarchy plus the per-stage timing
// breakdown. The setup pipeline shards over the worker pool configured
// by SetParallelKernels and is bitwise-identical to the serial path for
// any worker count.
func BuildHierarchyWithStats(a *Matrix, opt AMGOptions) (*Hierarchy, *SetupStats, error) {
	return amg.BuildWithStats(a, opt)
}

// ---- Coarse-operator sparsification ----

// SparsifyOptions configures post-RAP sparsification of interior coarse
// operators (AMGOptions.Sparsify): entries weak under the classical
// strength measure at Theta — as seen from both endpoint rows — are
// dropped with compensation, and a per-level convergence guard reverts
// any level whose removal degrades a deterministic probe cycle beyond
// GuardTol. The zero value disables sparsification.
type SparsifyOptions = amg.SparsifyOptions

// SparsifyMode selects how dropped mass is compensated.
type SparsifyMode = sparse.SparsifyMode

// The compensation modes: lumping onto the diagonal (preserves row sums
// and symmetry), rescaling the kept off-diagonals (row sums only), or
// uncompensated dropping (experiments only).
const (
	SparsifyLump     = sparse.SparsifyLump
	SparsifyRescale  = sparse.SparsifyRescale
	SparsifyDropOnly = sparse.SparsifyDropOnly
)

// SparsifyLevelStat records one level's sparsification outcome in
// SetupStats (nnz before/after, skip and guard-revert flags).
type SparsifyLevelStat = amg.SparsifyLevelStat

// SparsifyStrength returns a sparsified copy of a: off-diagonal entries
// weak under the strength measure at threshold theta in both endpoint
// rows are dropped and compensated per mode. Sharded over the worker
// pool, bitwise-identical to the serial result at any worker count.
func SparsifyStrength(a *Matrix, theta float64, mode SparsifyMode) *Matrix {
	return sparse.SparsifyStrength(a, theta, mode)
}

// SparsifyStrengthInto is SparsifyStrength writing into dst, reusing its
// buffers when capacities suffice — zero steady-state allocations on a
// warm destination.
func SparsifyStrengthInto(dst, a *Matrix, theta float64, mode SparsifyMode) {
	sparse.SparsifyStrengthInto(dst, a, theta, mode)
}

// ---- Smoothers ----

// SmootherKind identifies one of the four smoothers of the paper.
type SmootherKind = smoother.Kind

// SmootherConfig selects and parameterizes a smoother.
type SmootherConfig = smoother.Config

// The four smoothers evaluated in the paper, plus the ℓ1 variant of hybrid
// JGS (the divergence-proof hybrid smoother of the paper's reference [23]).
const (
	WJacobi     = smoother.WJacobi
	L1Jacobi    = smoother.L1Jacobi
	HybridJGS   = smoother.HybridJGS
	AsyncGS     = smoother.AsyncGS
	L1HybridJGS = smoother.L1HybridJGS
)

// DefaultSmoother returns ω-Jacobi with ω = 0.9.
func DefaultSmoother() SmootherConfig { return smoother.DefaultConfig() }

// ---- Multigrid setup and synchronous solvers ----

// Setup bundles the hierarchy, per-level smoothers, and the smoothed
// interpolants of Multadd.
type Setup = mg.Setup

// Method selects a multigrid algorithm.
type Method = mg.Method

// The multigrid methods.
const (
	Mult    = mg.Mult
	Multadd = mg.Multadd
	AFACx   = mg.AFACx
	BPX     = mg.BPX
)

// NewSetup builds the AMG hierarchy and all solver operators for a.
func NewSetup(a *Matrix, amgOpt AMGOptions, smoCfg SmootherConfig) (*Setup, error) {
	return mg.NewSetup(a, amgOpt, smoCfg)
}

// NewSetupFromHierarchy builds solver operators on an existing hierarchy.
func NewSetupFromHierarchy(h *Hierarchy, smoCfg SmootherConfig) (*Setup, error) {
	return mg.NewSetupFromHierarchy(h, smoCfg)
}

// ---- Operator abstraction: matrix-free fine levels, mixed precision ----

// Operator is the storage-agnostic linear operator the cycle engine runs
// on: float64 CSR (the default), float32 CSR with float64 accumulation,
// or the matrix-free stencil operators below.
type Operator = op.Operator

// Interp is the prolongation/restriction view of one hierarchy level pair.
type Interp = op.Interp

// Precision selects the storage precision of the solver's hierarchy view
// (AMGOptions.CoarsePrecision).
type Precision = op.Precision

// Hierarchy storage-precision policies. Float64 keeps every matrix in
// float64 CSR (the default, bitwise-pinned by the golden tests);
// CoarseFloat32 re-stores the coarse operators (levels >= 1) and all
// interpolants in float32 with float64 accumulation — about half the
// hierarchy bytes at unchanged iteration counts on the paper's problems.
const (
	Float64       = op.Float64
	CoarseFloat32 = op.CoarseFloat32
)

// Stencil7 is the matrix-free operator of the 7-point Laplacian on an
// n×n×n grid: Laplacian7pt(n) without storing the matrix. Its kernels
// are bitwise-identical to the CSR kernels on the same problem.
type Stencil7 = op.Stencil7

// Stencil27 is the matrix-free 27-point Laplacian operator.
type Stencil27 = op.Stencil27

// NewStencil7 builds the matrix-free 7-point Laplacian on an n×n×n grid.
func NewStencil7(n int) *Stencil7 { return op.NewStencil7(n) }

// NewStencil27 builds the matrix-free 27-point Laplacian operator.
func NewStencil27(n int) *Stencil27 { return op.NewStencil27(n) }

// NewSetupMatrixFree builds the hierarchy and all solver operators from
// an arbitrary fine-level operator. A matrix-free stencil coarsens itself
// geometrically (trilinear 2h interpolation plus a Galerkin product) and
// the AMG setup continues algebraically from the first coarse matrix —
// the fine-level matrix is never materialized. A CSR-backed operator
// takes the standard NewSetup path.
func NewSetupMatrixFree(a Operator, amgOpt AMGOptions, smoCfg SmootherConfig) (*Setup, error) {
	return mg.NewSetupOperator(a, amgOpt, smoCfg)
}

// SolveSync runs tmax sequential V-cycles of the chosen method from x = 0
// and returns the final iterate and the relative-residual history.
func SolveSync(s *Setup, m Method, b []float64, tmax int) (x []float64, hist []float64) {
	return s.Solve(m, b, tmax)
}

// SolveSyncCtx is SolveSync with cancellation: the solve stops at the next
// cycle boundary and returns ctx's error when ctx is cancelled or its
// deadline passes. With a live context it reproduces SolveSync bit for
// bit.
func SolveSyncCtx(ctx context.Context, s *Setup, m Method, b []float64, tmax int) (x []float64, hist []float64, err error) {
	return s.SolveCtx(ctx, m, b, tmax)
}

// SolveSyncDamped runs tmax uniformly damped additive V-cycles (Multadd
// or AFACx) with every grid's correction scaled by omega before
// prolongation: the deterministic sequential reference for the
// asynchronous damped path (omega = 1 matches SolveSync bit for bit).
func SolveSyncDamped(s *Setup, m Method, b []float64, tmax int, omega float64) (x []float64, hist []float64) {
	return s.SolveDamped(m, b, tmax, omega)
}

// SolveSyncBlock solves k right-hand sides at once. b packs the columns
// row-major (b[i*k+c] is row i of column c) and x is packed the same way;
// hists[c] is column c's relative-residual history. Column by column the
// result is bitwise identical to k independent SolveSync calls: Mult and
// Multadd run fused block kernels that traverse each matrix once per
// level instead of k times, and methods without a block path fall back to
// per-column solves.
func SolveSyncBlock(ctx context.Context, s *Setup, m Method, b []float64, k, tmax int) (x []float64, hists [][]float64, err error) {
	return s.SolveBlockCtx(ctx, m, b, k, tmax)
}

// ---- Asynchronous models (Section III) ----

// ModelVariant selects one of the three §III simulation models.
type ModelVariant = model.Variant

// ModelConfig parameterizes a model simulation run.
type ModelConfig = model.Config

// ModelResult reports a simulation outcome.
type ModelResult = model.Result

// The three asynchronous models.
const (
	SemiAsync         = model.SemiAsync
	FullAsyncSolution = model.FullAsyncSolution
	FullAsyncResidual = model.FullAsyncResidual
)

// SimulateModel runs one sequential simulation of asynchronous multigrid.
func SimulateModel(s *Setup, b []float64, cfg ModelConfig) (*ModelResult, error) {
	return model.Run(s, b, cfg)
}

// ---- Asynchronous runtime (Section IV) ----

// AsyncConfig parameterizes a parallel (synchronous or asynchronous) solve.
type AsyncConfig = async.Config

// AsyncResult reports a parallel solve's outcome.
type AsyncResult = async.Result

// WriteMode selects lock-write or atomic-write.
type WriteMode = async.WriteMode

// ResMode selects local-res, global-res, or the residual-based update.
type ResMode = async.ResMode

// StopCriterion selects the paper's stopping rule.
type StopCriterion = async.Criterion

// DampingPolicy parameterizes the per-grid correction damping of the
// additive parallel solvers (stabilised async): off, fixed ω, or the
// adaptive staleness-driven controller, plus the rollback-last guard.
type DampingPolicy = async.DampingPolicy

// DampMode selects the damping policy's mode.
type DampMode = async.DampMode

// AsyncPerturb injects deterministic read-delay and straggler adversity
// into asynchronous runs (testing and the staleness-sweep harness).
type AsyncPerturb = async.Perturb

// Write modes, residual modes, stopping criteria and damping modes.
const (
	LockWrite   = async.LockWrite
	AtomicWrite = async.AtomicWrite

	LocalRes    = async.LocalRes
	GlobalRes   = async.GlobalRes
	ResidualRes = async.ResidualRes

	Criterion1 = async.Criterion1
	Criterion2 = async.Criterion2

	DampOff   = async.DampOff
	DampFixed = async.DampFixed
	DampAuto  = async.DampAuto
)

// SolveAsync runs the configured parallel multigrid solver on A x = b.
func SolveAsync(s *Setup, b []float64, cfg AsyncConfig) (*AsyncResult, error) {
	return async.Solve(context.Background(), s, b, cfg)
}

// SolveAsyncCtx is SolveAsync with cancellation: the solve stops at the
// next cycle boundary and returns ctx's error when ctx is cancelled or its
// deadline passes.
func SolveAsyncCtx(ctx context.Context, s *Setup, b []float64, cfg AsyncConfig) (*AsyncResult, error) {
	return async.Solve(ctx, s, b, cfg)
}

// ---- Experiment harness ----

// BuildProblem generates a test matrix by family name ("7pt", "27pt",
// "mfem-laplace", "mfem-elasticity") and mesh parameter.
func BuildProblem(name string, size int) (*Matrix, error) {
	return harness.BuildProblem(name, size)
}

// ProblemNames lists the four test-matrix families of the paper.
func ProblemNames() []string { return harness.AllProblems() }

// ---- Krylov solvers ----

// CGOptions configures a (preconditioned) conjugate gradient solve.
type CGOptions = krylov.Options

// CGResult reports a CG solve.
type CGResult = krylov.Result

// Preconditioner applies z = M⁻¹r inside PCG.
type Preconditioner = krylov.Preconditioner

// MGPreconditioner applies one multigrid cycle as a preconditioner — the
// proper use of BPX per the paper ("BPX is typically used as a
// preconditioner").
type MGPreconditioner = krylov.MGPreconditioner

// DefaultCGOptions returns Tol 1e-9, MaxIter 1000, no preconditioner.
func DefaultCGOptions() CGOptions { return krylov.DefaultOptions() }

// SolveCG runs (preconditioned) conjugate gradients on A x = b from x = 0.
func SolveCG(a *Matrix, b []float64, opt CGOptions) (*CGResult, error) {
	return krylov.Solve(a, b, opt)
}

// NewMGPreconditioner builds a one-cycle multigrid preconditioner.
func NewMGPreconditioner(s *Setup, m Method) *MGPreconditioner {
	return krylov.NewMGPreconditioner(s, m)
}

// ErrKrylovBreakdown is returned when PCG meets an indefinite operator or
// preconditioner, or FGMRES hits a singular projection.
var ErrKrylovBreakdown = krylov.ErrBreakdown

// SolvePCG runs (preconditioned) conjugate gradients on any Operator —
// assembled CSR, matrix-free stencil, or float32 view — from x = 0.
// The operator and preconditioner must be SPD (Mult, Multadd and BPX
// cycles qualify; AFACx does not).
func SolvePCG(a Operator, b []float64, opt CGOptions) (CGResult, error) {
	return krylov.PCG(a, b, opt)
}

// SolveFGMRES runs flexible GMRES(m) with restarts on any Operator from
// x = 0. Unlike PCG it tolerates non-symmetric operators and
// non-SPD/varying preconditioners (AFACx, asynchronous cycles).
func SolveFGMRES(a Operator, b []float64, opt CGOptions) (CGResult, error) {
	return krylov.FGMRES(a, b, opt)
}

// BlockCGResult reports a block multi-RHS PCG solve.
type BlockCGResult = krylov.BlockResult

// SolveBlockPCG runs k simultaneous multigrid-preconditioned CG solves
// sharing one block cycle per iteration, bitwise identical to k solo
// solves. b holds the k right-hand sides column-major (len k*n).
func SolveBlockPCG(s *Setup, m Method, b []float64, k int, opt CGOptions) (*BlockCGResult, error) {
	return krylov.BlockPCG(s, m, b, k, opt)
}

// ---- Distributed-memory simulation ----

// DistConfig parameterizes a distributed-memory asynchronous solve (message
// passing between grid processes; the paper's distributed-memory outlook).
// Its Fault field injects message loss, duplication, reordering, worker
// crashes and dead grids; the solver's watchdog/respawn/retirement
// machinery recovers from them (see DistResult's fault counters).
type DistConfig = distmem.Config

// DistResult reports a distributed solve, including fault-injection and
// recovery counters (drops, crashes, respawns, retired grids, ...).
type DistResult = distmem.Result

// FaultConfig parameterizes the deterministic fault-injection transport of
// the distributed simulation (DistConfig.Fault).
type FaultConfig = fault.Config

// SolveDistributed runs the message-passing asynchronous additive solve.
func SolveDistributed(s *Setup, b []float64, cfg DistConfig) (*DistResult, error) {
	return distmem.Solve(context.Background(), s, b, cfg)
}

// SolveDistributedCtx is SolveDistributed with cancellation: the solve
// returns ctx's error when ctx fires before completion — the safety net
// for fault schedules the recovery machinery cannot outrun (e.g. a network
// that drops everything with the watchdog disabled).
func SolveDistributedCtx(ctx context.Context, s *Setup, b []float64, cfg DistConfig) (*DistResult, error) {
	return distmem.Solve(ctx, s, b, cfg)
}

// ---- Matrix Market I/O ----

// ReadMatrixMarket parses a Matrix Market stream (coordinate format,
// real/integer/pattern, general/symmetric) into a Matrix.
func ReadMatrixMarket(r io.Reader) (*Matrix, error) { return mtx.Read(r) }

// ReadMatrixMarketFile reads a Matrix Market file from disk.
func ReadMatrixMarketFile(path string) (*Matrix, error) { return mtx.ReadFile(path) }

// WriteMatrixMarket emits a Matrix in Matrix Market coordinate/real/general
// format.
func WriteMatrixMarket(w io.Writer, a *Matrix) error { return mtx.Write(w, a) }

// WriteMatrixMarketFile writes a Matrix to a Matrix Market file.
func WriteMatrixMarketFile(path string, a *Matrix) error { return mtx.WriteFile(path, a) }

// ---- Convergence diagnostics ----

// AsyncSmootherRadius estimates ρ(|I − diag(scale)·A|): the asynchronous
// smoother iteration of Equation 5 converges when this is below 1. scale is
// obtained from the smoother configuration via InterpolantScaling-style
// diagonal scalings; pass ω/diag(A) for ω-Jacobi.
func AsyncSmootherRadius(a *Matrix, scale []float64) (float64, error) {
	return spectral.AsyncSmootherRadius(a, scale)
}

// SpectralRadius estimates the spectral radius of a non-negative matrix via
// the power method.
func SpectralRadius(a *Matrix, tol float64, maxIter int) (float64, error) {
	return spectral.Radius(a, tol, maxIter)
}

// SmootherScaling returns the diagonal scaling vector of a smoother's
// iteration matrix G = I − diag(s)·A (ω/a_ii for ω-Jacobi and the
// GS-family smoothers' interpolant scaling, 1/Σ|a_ij| for ℓ1-Jacobi).
func SmootherScaling(a *Matrix, cfg SmootherConfig) ([]float64, error) {
	return smoother.InterpolantScaling(a, cfg)
}

// ConvergenceFactor estimates the asymptotic per-cycle convergence factor
// of a method on a setup (power iteration on the homogeneous problem). A
// factor below 1 means the method converges as a standalone solver; BPX's
// exceeds 1 (the over-correction that motivates Multadd and AFACx).
func ConvergenceFactor(s *Setup, m Method, iters int, seed int64) float64 {
	return s.ConvergenceFactor(m, iters, seed)
}

// ---- Observability ----

// Observer is the zero-allocation metrics sink every solver can report
// into: per-grid relaxation and correction counters, the
// correction-staleness histogram (the empirical read delay δ),
// residual-trace events, the unified fault/recovery counters of the
// distributed solver, and worker-pool utilization. Attach one via
// AsyncConfig.Observer, DistConfig.Observer, ModelConfig.Observer,
// CGOptions.Observer, or Setup.SetObserver (for the synchronous cycles);
// a nil observer disables all instrumentation. All recording is atomic
// and allocation-free, so one observer may be shared across concurrent
// solves.
type Observer = obs.Observer

// MetricsSnapshot is a point-in-time copy of an observer's signals.
type MetricsSnapshot = obs.Snapshot

// TraceEvent is one entry of an observer's bounded event timeline.
type TraceEvent = obs.Event

// NewObserver builds an observer for solves over at most `grids` grids
// (hierarchy levels). Chain WithTrace(capacity) to retain an event
// timeline.
func NewObserver(grids int) *Observer { return obs.New(grids) }

// ServeDebug starts an HTTP server on addr exposing /metrics (plain-text
// exposition of o's registry) and the standard /debug/pprof/ endpoints,
// returning the bound address. Pass a nil observer for profiling only.
func ServeDebug(addr string, o *Observer) (string, error) { return obs.ServeDebug(addr, o) }

// StartExecutionTrace begins a runtime/trace capture into path and
// returns a stop function; an empty path is a no-op.
func StartExecutionTrace(path string) (stop func() error, err error) { return obs.StartTrace(path) }

// WriteMetricsFile writes o's exposition text to path (truncating).
func WriteMetricsFile(path string, o *Observer) error { return obs.WriteMetricsFile(path, o) }

// ---- Solver service ----

// ServeConfig tunes the solver service (hierarchy-cache size, admission
// queue bound, worker and batch limits, request deadlines). The zero
// value picks sensible defaults.
type ServeConfig = serve.Config

// SolverServer is the solver-as-a-service HTTP server: POST /solve
// (named problems) and POST /solve/matrix (MatrixMarket uploads, gzip
// accepted) with an LRU cache of AMG hierarchies, multi-RHS request
// batching over the block solve path, admission control with 429/503
// backpressure, and /healthz + /metrics endpoints. See cmd/mgserve for
// the standalone binary.
type SolverServer = serve.Server

// ServeSolveRequest is the JSON body of the service's /solve endpoint.
type ServeSolveRequest = serve.SolveRequest

// ServeSolveResponse is the JSON reply of the service's solve endpoints.
type ServeSolveResponse = serve.SolveResponse

// NewSolverServer builds a solver service from cfg.
func NewSolverServer(cfg ServeConfig) *SolverServer { return serve.New(cfg) }

// ---- Chaotic relaxation (Section II.C, Equation 5) ----

// ChaoticConfig parameterizes a distributed (a)synchronous relaxation
// solve: row-block processes exchanging halo values through newest-wins
// mailboxes — the Chazan-Miranker chaotic relaxation the paper's theory
// builds on.
type ChaoticConfig = chaotic.Config

// ChaoticResult reports a chaotic relaxation solve.
type ChaoticResult = chaotic.Result

// Relaxation kinds for SolveChaotic.
const (
	ChaoticJacobi      = chaotic.Jacobi
	ChaoticGaussSeidel = chaotic.GaussSeidel
)

// SolveChaotic runs the distributed asynchronous relaxation of Equation 5
// on A x = b. It converges whenever AsyncSmootherRadius(a, scale) < 1.
func SolveChaotic(a *Matrix, b []float64, cfg ChaoticConfig) (*ChaoticResult, error) {
	return chaotic.Solve(a, b, cfg)
}
