// Benchmarks regenerating the paper's evaluation, one per table and figure,
// plus ablation benchmarks for the design choices called out in DESIGN.md.
// Each benchmark measures the wall-clock cost of its experiment's unit of
// work and reports the experiment's headline quantity (final relative
// residual, cycles, levels, ...) via b.ReportMetric, so `go test -bench=.`
// output doubles as a compact reproduction log. The full paper-formatted
// tables come from cmd/mgbench and cmd/mgsim.
package asyncmg_test

import (
	"fmt"
	"sync"
	"testing"

	"asyncmg"
)

// lazily built shared setups (AMG setup is expensive; benchmarks measure
// solves, not setup, except for the explicitly named setup benchmarks).
var (
	setupMu    sync.Mutex
	setupCache = map[string]*asyncmg.Setup{}
)

func benchSetup(b *testing.B, problem string, size, agg int, kind asyncmg.SmootherKind, omega float64) *asyncmg.Setup {
	b.Helper()
	key := fmt.Sprintf("%s/%d/%d/%v/%v", problem, size, agg, kind, omega)
	setupMu.Lock()
	defer setupMu.Unlock()
	if s, ok := setupCache[key]; ok {
		return s
	}
	a, err := asyncmg.BuildProblem(problem, size)
	if err != nil {
		b.Fatal(err)
	}
	opt := asyncmg.DefaultAMGOptions()
	opt.AggressiveLevels = agg
	s, err := asyncmg.NewSetup(a, opt, asyncmg.SmootherConfig{Kind: kind, Omega: omega, Blocks: 1})
	if err != nil {
		b.Fatal(err)
	}
	setupCache[key] = s
	return s
}

// ---- Figure 1: semi-async model, α sweep, δ = 0 ----

func BenchmarkFig1SemiAsync(b *testing.B) {
	for _, alpha := range []float64{0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("alpha=%.1f", alpha), func(b *testing.B) {
			s := benchSetup(b, "27pt", 10, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SimulateModel(s, rhs, asyncmg.ModelConfig{
					Variant: asyncmg.SemiAsync, Method: asyncmg.Multadd,
					Alpha: alpha, Delta: 0, Updates: 20, Seed: int64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
			}
			b.ReportMetric(last, "relres")
		})
	}
}

// ---- Figure 2: full-async model, δ sweep, α = 0.1 ----

func BenchmarkFig2FullAsync(b *testing.B) {
	for _, variant := range []asyncmg.ModelVariant{asyncmg.FullAsyncSolution, asyncmg.FullAsyncResidual} {
		for _, delta := range []int{0, 4, 16} {
			b.Run(fmt.Sprintf("%v/delta=%d", variant, delta), func(b *testing.B) {
				s := benchSetup(b, "27pt", 10, 1, asyncmg.WJacobi, 0.9)
				rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
				var last float64
				for i := 0; i < b.N; i++ {
					res, err := asyncmg.SimulateModel(s, rhs, asyncmg.ModelConfig{
						Variant: variant, Method: asyncmg.Multadd,
						Alpha: 0.1, Delta: delta, Updates: 20, Seed: int64(i),
					})
					if err != nil {
						b.Fatal(err)
					}
					last = res.RelRes
				}
				b.ReportMetric(last, "relres")
			})
		}
	}
}

// ---- Figure 4: real async solvers, grid-size independence (stencils) ----

func BenchmarkFig4GridIndependence(b *testing.B) {
	for _, size := range []int{8, 12, 16} {
		b.Run(fmt.Sprintf("27pt/n=%d", size), func(b *testing.B) {
			s := benchSetup(b, "27pt", size, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SolveAsync(s, rhs, asyncmg.AsyncConfig{
					Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes,
					Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
			}
			// Grid-size independence: this metric should stay flat across
			// the size sub-benchmarks.
			b.ReportMetric(last, "relres")
		})
	}
}

// ---- Figure 5: FEM Laplace (ball mesh), no aggressive coarsening ----

func BenchmarkFig5FEMLaplace(b *testing.B) {
	for _, size := range []int{6, 8, 10} {
		b.Run(fmt.Sprintf("n=%d", size), func(b *testing.B) {
			s := benchSetup(b, "mfem-laplace", size, 0, asyncmg.WJacobi, 0.5)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SolveAsync(s, rhs, asyncmg.AsyncConfig{
					Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes,
					Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
			}
			b.ReportMetric(last, "relres")
		})
	}
}

// ---- Table I: one sub-benchmark per matrix × representative methods ----

func table1Methods() []struct {
	name string
	cfg  asyncmg.AsyncConfig
} {
	return []struct {
		name string
		cfg  asyncmg.AsyncConfig
	}{
		{"syncMult", asyncmg.AsyncConfig{Method: asyncmg.Mult, Sync: true}},
		{"syncMultadd", asyncmg.AsyncConfig{Method: asyncmg.Multadd, Sync: true, Write: asyncmg.AtomicWrite}},
		{"asyncMultaddLocal", asyncmg.AsyncConfig{Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes}},
		{"asyncAFACx", asyncmg.AsyncConfig{Method: asyncmg.AFACx, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes}},
	}
}

func benchTable1(b *testing.B, problem string, size int, omega float64) {
	for _, m := range table1Methods() {
		b.Run(m.name, func(b *testing.B) {
			s := benchSetup(b, problem, size, 2, asyncmg.WJacobi, omega)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			var corr float64
			for i := 0; i < b.N; i++ {
				cfg := m.cfg
				cfg.Criterion = asyncmg.Criterion2
				cfg.Threads = 8
				cfg.MaxCycles = 20
				res, err := asyncmg.SolveAsync(s, rhs, cfg)
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
				corr = res.AvgCorrects
			}
			b.ReportMetric(last, "relres")
			b.ReportMetric(corr, "corrects")
		})
	}
}

func BenchmarkTable1_7pt(b *testing.B)            { benchTable1(b, "7pt", 12, 0.9) }
func BenchmarkTable1_27pt(b *testing.B)           { benchTable1(b, "27pt", 12, 0.9) }
func BenchmarkTable1_MFEMLaplace(b *testing.B)    { benchTable1(b, "mfem-laplace", 8, 0.5) }
func BenchmarkTable1_MFEMElasticity(b *testing.B) { benchTable1(b, "mfem-elasticity", 3, 0.5) }

// ---- Figure 6: wall-clock vs thread count ----

func BenchmarkFig6ThreadScaling(b *testing.B) {
	for _, threads := range []int{4, 8, 16} {
		for _, m := range []struct {
			name string
			cfg  asyncmg.AsyncConfig
		}{
			{"syncMult", asyncmg.AsyncConfig{Method: asyncmg.Mult, Sync: true}},
			{"syncMultadd", asyncmg.AsyncConfig{Method: asyncmg.Multadd, Sync: true, Write: asyncmg.LockWrite}},
			{"asyncMultadd", asyncmg.AsyncConfig{Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes}},
		} {
			b.Run(fmt.Sprintf("threads=%d/%s", threads, m.name), func(b *testing.B) {
				s := benchSetup(b, "7pt", 12, 2, asyncmg.WJacobi, 0.9)
				if threads < s.NumLevels() {
					b.Skipf("%d threads < %d grids", threads, s.NumLevels())
				}
				rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
				for i := 0; i < b.N; i++ {
					cfg := m.cfg
					cfg.Criterion = asyncmg.Criterion1
					cfg.Threads = threads
					cfg.MaxCycles = 20
					if _, err := asyncmg.SolveAsync(s, rhs, cfg); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// ---- Ablations ----

// BenchmarkAblationWriteMode isolates lock-write vs atomic-write.
func BenchmarkAblationWriteMode(b *testing.B) {
	for _, wm := range []asyncmg.WriteMode{asyncmg.LockWrite, asyncmg.AtomicWrite} {
		b.Run(wm.String(), func(b *testing.B) {
			s := benchSetup(b, "27pt", 12, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			for i := 0; i < b.N; i++ {
				if _, err := asyncmg.SolveAsync(s, rhs, asyncmg.AsyncConfig{
					Method: asyncmg.Multadd, Write: wm, Res: asyncmg.LocalRes,
					Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: 20,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationResMode isolates local-res vs global-res vs r-Multadd.
func BenchmarkAblationResMode(b *testing.B) {
	for _, rm := range []asyncmg.ResMode{asyncmg.LocalRes, asyncmg.GlobalRes, asyncmg.ResidualRes} {
		b.Run(rm.String(), func(b *testing.B) {
			s := benchSetup(b, "27pt", 12, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SolveAsync(s, rhs, asyncmg.AsyncConfig{
					Method: asyncmg.Multadd, Write: asyncmg.AtomicWrite, Res: rm,
					Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
			}
			b.ReportMetric(last, "relres")
		})
	}
}

// BenchmarkAblationBPX contrasts the over-correcting BPX baseline with
// Multadd: same additive structure, smoothed vs plain interpolants.
func BenchmarkAblationBPX(b *testing.B) {
	for _, m := range []asyncmg.Method{asyncmg.BPX, asyncmg.Multadd} {
		b.Run(m.String(), func(b *testing.B) {
			s := benchSetup(b, "7pt", 10, 0, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var last float64
			for i := 0; i < b.N; i++ {
				_, hist := asyncmg.SolveSync(s, m, rhs, 15)
				last = hist[len(hist)-1]
			}
			b.ReportMetric(last, "relres")
		})
	}
}

// BenchmarkAblationAggressive measures the effect of aggressive coarsening
// levels on setup cost and hierarchy shape.
func BenchmarkAblationAggressive(b *testing.B) {
	a, err := asyncmg.BuildProblem("27pt", 12)
	if err != nil {
		b.Fatal(err)
	}
	for _, agg := range []int{0, 1, 2} {
		b.Run(fmt.Sprintf("agg=%d", agg), func(b *testing.B) {
			var levels, complexity float64
			for i := 0; i < b.N; i++ {
				opt := asyncmg.DefaultAMGOptions()
				opt.AggressiveLevels = agg
				h, err := asyncmg.BuildHierarchy(a, opt)
				if err != nil {
					b.Fatal(err)
				}
				levels = float64(h.NumLevels())
				complexity = h.OperatorComplexity()
			}
			b.ReportMetric(levels, "levels")
			b.ReportMetric(complexity, "opcomplexity")
		})
	}
}

// BenchmarkAblationCriterion contrasts the two stopping rules.
func BenchmarkAblationCriterion(b *testing.B) {
	for _, c := range []asyncmg.StopCriterion{asyncmg.Criterion1, asyncmg.Criterion2} {
		b.Run(c.String(), func(b *testing.B) {
			s := benchSetup(b, "7pt", 12, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			var corr float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SolveAsync(s, rhs, asyncmg.AsyncConfig{
					Method: asyncmg.Multadd, Write: asyncmg.AtomicWrite, Res: asyncmg.LocalRes,
					Criterion: c, Threads: 8, MaxCycles: 20,
				})
				if err != nil {
					b.Fatal(err)
				}
				corr = res.AvgCorrects
			}
			b.ReportMetric(corr, "corrects")
		})
	}
}

// ---- Kernel benchmarks (the substrate costs underneath every experiment) ----

func BenchmarkKernelSpMV27pt(b *testing.B) {
	a, err := asyncmg.BuildProblem("27pt", 16)
	if err != nil {
		b.Fatal(err)
	}
	x := asyncmg.RandomRHS(a.Rows, 1)
	y := make([]float64, a.Rows)
	b.SetBytes(int64(a.NNZ() * 12)) // 8B value + 4B index per entry
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.MatVec(y, x)
	}
}

// BenchmarkKernelSparsify measures the strength-aware sparsification
// kernel on the densified 27-point coarse-operator workload, one
// sub-benchmark per compensation mode. The kernel's contract is 0
// allocs/op on a warm destination (benchguard -sparsify also enforces it
// via the measurement embedded in BENCH_sparsify.json).
func BenchmarkKernelSparsify(b *testing.B) {
	a, err := asyncmg.BuildProblem("27pt", 16)
	if err != nil {
		b.Fatal(err)
	}
	for _, mode := range []asyncmg.SparsifyMode{asyncmg.SparsifyLump, asyncmg.SparsifyRescale, asyncmg.SparsifyDropOnly} {
		b.Run(mode.String(), func(b *testing.B) {
			dst := &asyncmg.Matrix{}
			asyncmg.SparsifyStrengthInto(dst, a, 0.25, mode) // warm the destination buffers
			b.SetBytes(int64(a.NNZ() * 12))                  // 8B value + 4B index scanned per entry
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				asyncmg.SparsifyStrengthInto(dst, a, 0.25, mode)
			}
		})
	}
}

func BenchmarkKernelAMGSetup(b *testing.B) {
	for _, problem := range []string{"7pt", "27pt"} {
		b.Run(problem, func(b *testing.B) {
			a, err := asyncmg.BuildProblem(problem, 12)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := asyncmg.BuildHierarchy(a, asyncmg.DefaultAMGOptions()); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkStencilApply compares the fine-level operator application of
// the assembled CSR Laplacians against their matrix-free stencil twins on
// the same grid. The stencil rows/s must stay ahead of CSR (benchguard
// -stencil enforces >= 2x) and both paths are allocation-free.
func BenchmarkStencilApply(b *testing.B) {
	for _, tc := range []struct {
		problem string
		st      asyncmg.Operator
	}{
		{"7pt", asyncmg.NewStencil7(24)},
		{"27pt", asyncmg.NewStencil27(24)},
	} {
		a, err := asyncmg.BuildProblem(tc.problem, 24)
		if err != nil {
			b.Fatal(err)
		}
		x := asyncmg.RandomRHS(a.Rows, 1)
		y := make([]float64, a.Rows)
		rows := float64(a.Rows)
		b.Run(tc.problem+"/csr", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				a.MatVec(y, x)
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrow/s")
		})
		b.Run(tc.problem+"/stencil", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				tc.st.ApplyRange(y, x, 0, a.Rows)
			}
			b.ReportMetric(rows*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mrow/s")
		})
	}
}

// BenchmarkMixedPrecisionCycle drives one Multadd cycle on the float64
// and float32-coarse hierarchies of the same problem: the compressed
// hierarchy must keep the engine's 0 allocs/op steady-state contract, and
// the reported hierarchy_B metric records the resident-bytes gap.
func BenchmarkMixedPrecisionCycle(b *testing.B) {
	a, err := asyncmg.BuildProblem("27pt", 12)
	if err != nil {
		b.Fatal(err)
	}
	smo := asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.9, Blocks: 1}
	for _, tc := range []struct {
		name string
		prec asyncmg.Precision
	}{
		{"f64", asyncmg.Float64},
		{"f32-coarse", asyncmg.CoarseFloat32},
	} {
		b.Run(tc.name, func(b *testing.B) {
			opt := asyncmg.DefaultAMGOptions()
			opt.AggressiveLevels = 1
			opt.CoarsePrecision = tc.prec
			s, err := asyncmg.NewSetup(a, opt, smo)
			if err != nil {
				b.Fatal(err)
			}
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			x := make([]float64, s.LevelSize(0))
			w := s.AcquireWorkspace()
			defer s.ReleaseWorkspace(w)
			s.Cycle(asyncmg.Multadd, x, rhs, w) // warm up the coarse solver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Cycle(asyncmg.Multadd, x, rhs, w)
			}
			b.ReportMetric(float64(s.HierarchyBytes()), "hierarchy_B")
		})
	}
}

// BenchmarkKernelCycleAllocs drives one engine cycle per method on a held
// workspace with allocation reporting: the engine's contract is 0
// allocs/op in steady state (see internal/engine's alloc tests).
func BenchmarkKernelCycleAllocs(b *testing.B) {
	for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx, asyncmg.BPX} {
		b.Run(m.String(), func(b *testing.B) {
			s := benchSetup(b, "27pt", 12, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			x := make([]float64, s.LevelSize(0))
			w := s.AcquireWorkspace()
			defer s.ReleaseWorkspace(w)
			s.Cycle(m, x, rhs, w) // warm up the coarse solver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Cycle(m, x, rhs, w)
			}
		})
	}
}

// BenchmarkKernelCycleObserved repeats BenchmarkKernelCycleAllocs with a
// metrics observer attached: the observability contract is 0 allocs/op and
// under 5% time overhead relative to the unobserved cycle (the instruments
// are preallocated atomics; see BENCH_kernels.json for the recorded delta).
func BenchmarkKernelCycleObserved(b *testing.B) {
	for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx, asyncmg.BPX} {
		b.Run(m.String(), func(b *testing.B) {
			s := benchSetup(b, "27pt", 12, 1, asyncmg.WJacobi, 0.9)
			s.SetObserver(asyncmg.NewObserver(s.NumLevels()))
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			x := make([]float64, s.LevelSize(0))
			w := s.AcquireWorkspace()
			defer s.ReleaseWorkspace(w)
			s.Cycle(m, x, rhs, w) // warm up the coarse solver
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s.Cycle(m, x, rhs, w)
			}
		})
	}
}

func BenchmarkKernelVCycle(b *testing.B) {
	for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx} {
		b.Run(m.String(), func(b *testing.B) {
			s := benchSetup(b, "27pt", 12, 1, asyncmg.WJacobi, 0.9)
			rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				asyncmg.SolveSync(s, m, rhs, 1)
			}
		})
	}
}

// BenchmarkAblationPreconditioner compares plain CG against multigrid
// preconditioning (iteration counts reported as metrics).
func BenchmarkAblationPreconditioner(b *testing.B) {
	for _, tc := range []string{"plain", "bpx", "sym-multadd"} {
		b.Run(tc, func(b *testing.B) {
			s := benchSetup(b, "7pt", 10, 0, asyncmg.WJacobi, 0.9)
			a := s.H.Levels[0].A
			rhs := asyncmg.RandomRHS(a.Rows, 1)
			var iters float64
			for i := 0; i < b.N; i++ {
				opt := asyncmg.DefaultCGOptions()
				switch tc {
				case "bpx":
					opt.M = asyncmg.NewMGPreconditioner(s, asyncmg.BPX)
				case "sym-multadd":
					p := asyncmg.NewMGPreconditioner(s, asyncmg.Multadd)
					p.Symmetrized = true
					opt.M = p
				}
				res, err := asyncmg.SolveCG(a, rhs, opt)
				if err != nil {
					b.Fatal(err)
				}
				iters = float64(res.Iterations)
			}
			b.ReportMetric(iters, "iterations")
		})
	}
}

// BenchmarkDistributed measures the message-passing distributed solver.
func BenchmarkDistributed(b *testing.B) {
	s := benchSetup(b, "7pt", 10, 1, asyncmg.WJacobi, 0.9)
	rhs := asyncmg.RandomRHS(s.LevelSize(0), 1)
	var last float64
	for i := 0; i < b.N; i++ {
		res, err := asyncmg.SolveDistributed(s, rhs, asyncmg.DistConfig{
			Method: asyncmg.Multadd, MaxCorrections: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
		last = res.RelRes
	}
	b.ReportMetric(last, "relres")
}

// BenchmarkKernelSmootherSweep measures one sweep of each smoother on the
// 27pt operator.
func BenchmarkKernelSmootherSweep(b *testing.B) {
	for _, kind := range []asyncmg.SmootherKind{
		asyncmg.WJacobi, asyncmg.L1Jacobi, asyncmg.HybridJGS, asyncmg.AsyncGS,
	} {
		b.Run(kind.String(), func(b *testing.B) {
			// One Multadd cycle exercises exactly one sweep of this
			// smoother per level plus the transfer operators.
			setup := benchSetup(b, "27pt", 14, 1, kind, 0.9)
			rhs := asyncmg.RandomRHS(setup.LevelSize(0), 1)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				asyncmg.SolveSync(setup, asyncmg.Multadd, rhs, 1)
			}
		})
	}
}

// BenchmarkAblationCoarsening compares the three coarsening algorithms'
// setup cost and resulting hierarchy shape.
func BenchmarkAblationCoarsening(b *testing.B) {
	a, err := asyncmg.BuildProblem("27pt", 10)
	if err != nil {
		b.Fatal(err)
	}
	for _, m := range []asyncmg.CoarsenMethod{asyncmg.PMIS, asyncmg.HMIS, asyncmg.RugeStuben} {
		b.Run(m.String(), func(b *testing.B) {
			var levels, oc float64
			for i := 0; i < b.N; i++ {
				opt := asyncmg.DefaultAMGOptions()
				opt.Coarsening = m
				opt.AggressiveLevels = 0
				h, err := asyncmg.BuildHierarchy(a, opt)
				if err != nil {
					b.Fatal(err)
				}
				levels = float64(h.NumLevels())
				oc = h.OperatorComplexity()
			}
			b.ReportMetric(levels, "levels")
			b.ReportMetric(oc, "opcomplexity")
		})
	}
}

// BenchmarkChaoticRelaxation measures the distributed asynchronous Jacobi
// of Equation 5 against its synchronous (barriered) counterpart.
func BenchmarkChaoticRelaxation(b *testing.B) {
	a, err := asyncmg.BuildProblem("7pt", 10)
	if err != nil {
		b.Fatal(err)
	}
	rhs := asyncmg.RandomRHS(a.Rows, 1)
	for _, tc := range []struct {
		name string
		sync bool
	}{{"async", false}, {"sync", true}} {
		b.Run(tc.name, func(b *testing.B) {
			var last float64
			for i := 0; i < b.N; i++ {
				res, err := asyncmg.SolveChaotic(a, rhs, asyncmg.ChaoticConfig{
					Processes: 8, Sweeps: 100, Omega: 0.9, Synchronous: tc.sync,
				})
				if err != nil {
					b.Fatal(err)
				}
				last = res.RelRes
			}
			b.ReportMetric(last, "relres")
		})
	}
}
