// Quickstart: build a 3-D Poisson problem, set up the multigrid hierarchy,
// and solve it with asynchronous additive multigrid (Multadd, local-res,
// atomic-write) — the paper's recommended configuration.
package main

import (
	"fmt"
	"log"

	"asyncmg"
)

func main() {
	// 27-point Laplacian on a 16³ grid: 4096 unknowns.
	a := asyncmg.Laplacian27pt(16)

	// AMG setup with the paper's BoomerAMG-style defaults (HMIS coarsening,
	// classical modified interpolation, one aggressive level) and ω-Jacobi
	// smoothing.
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy levels: %v (operator complexity %.2f)\n",
		setup.H.GridSizes(), setup.H.OperatorComplexity())

	// Random right-hand side in [-1, 1], as in the paper's test framework.
	b := asyncmg.RandomRHS(a.Rows, 1)

	// Asynchronous solve: goroutine teams per grid, no global barriers.
	res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
		Method:    asyncmg.Multadd,
		Write:     asyncmg.AtomicWrite,
		Res:       asyncmg.LocalRes,
		Criterion: asyncmg.Criterion1,
		Threads:   8,
		MaxCycles: 30,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("async Multadd: rel res %.3e after %v (per-grid corrections %v)\n",
		res.RelRes, res.Elapsed, res.Corrections)

	// Compare with the classical multiplicative V(1,1)-cycle.
	_, hist := asyncmg.SolveSync(setup, asyncmg.Mult, b, 30)
	fmt.Printf("sync Mult:     rel res %.3e after 30 V-cycles\n", hist[len(hist)-1])
}
