// Preconditioned conjugate gradients with multigrid preconditioners: the
// proper use of BPX ("typically used as a preconditioner", Section II.B of
// the paper). The example writes a generated system to a Matrix Market
// file, reads it back (demonstrating interoperability with external test
// collections), and compares plain CG against BPX- and
// symmetrized-Multadd-preconditioned CG.
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"asyncmg"
)

func main() {
	// Generate and round-trip the system through Matrix Market.
	a := asyncmg.Laplacian7pt(14)
	dir, err := os.MkdirTemp("", "asyncmg-pcg")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "laplace7pt.mtx")
	if err := asyncmg.WriteMatrixMarketFile(path, a); err != nil {
		log.Fatal(err)
	}
	a, err = asyncmg.ReadMatrixMarketFile(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system: %d rows, %d nonzeros (via %s)\n", a.Rows, a.NNZ(), filepath.Base(path))

	amgOpt := asyncmg.DefaultAMGOptions()
	amgOpt.AggressiveLevels = 0
	setup, err := asyncmg.NewSetup(a, amgOpt, asyncmg.DefaultSmoother())
	if err != nil {
		log.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 11)

	run := func(label string, m asyncmg.Preconditioner) {
		opt := asyncmg.DefaultCGOptions()
		opt.M = m
		res, err := asyncmg.SolveCG(a, b, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s %4d iterations, rel res %.2e\n", label, res.Iterations, res.RelRes)
	}

	fmt.Println("\nCG at tolerance 1e-9:")
	run("plain CG", nil)
	// Preconditioners borrow their cycle workspace from the setup's pool;
	// Release returns it so successive preconditioners reuse the same
	// scratch instead of growing new per-level buffers.
	bpx := asyncmg.NewMGPreconditioner(setup, asyncmg.BPX)
	run("BPX-preconditioned", bpx)
	bpx.Release()
	sym := asyncmg.NewMGPreconditioner(setup, asyncmg.Multadd)
	sym.Symmetrized = true
	run("symmetrized-Multadd", sym)
	sym.Release()

	fmt.Println("\nBPX diverges as a standalone solver (over-correction) but makes")
	fmt.Println("an excellent preconditioner — the paper's Section II.B observation.")
}
