// Distributed-memory asynchronous multigrid: the paper's conclusion argues
// that the global-res / residual-based approach "is the most natural way to
// implement a distributed asynchronous multigrid method". This example runs
// the message-passing simulation: one process per grid, residual snapshots
// flowing through newest-wins mailboxes, corrections applied by an owner
// process with the residual-based update r ← r − A·c. It then shows the
// effect of interconnect latency and of unbalanced correction counts (the
// conclusion's caveat), and finally the fault-injection transport: the same
// solve surviving message loss, a worker crash, and a dead coarse grid.
package main

import (
	"fmt"
	"log"
	"time"

	"asyncmg"
)

func main() {
	a := asyncmg.Laplacian27pt(12)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d rows; hierarchy %v\n", a.Rows, setup.H.GridSizes())
	b := asyncmg.RandomRHS(a.Rows, 9)

	run := func(label string, cfg asyncmg.DistConfig) {
		res, err := asyncmg.SolveDistributed(setup, b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s rel res %.3e  broadcasts %4d  stale drops %3d  %v\n",
			label, res.RelRes, res.ResidualBroadcasts, res.StaleDrops, res.Elapsed.Round(time.Millisecond))
	}

	fmt.Println("\n30 corrections per grid process:")
	run("no latency", asyncmg.DistConfig{Method: asyncmg.Multadd, MaxCorrections: 30})
	run("0.5 ms per message", asyncmg.DistConfig{
		Method: asyncmg.Multadd, MaxCorrections: 30, Latency: 500 * time.Microsecond,
	})
	run("sparse broadcasts (every 4)", asyncmg.DistConfig{
		Method: asyncmg.Multadd, MaxCorrections: 30, BroadcastEvery: 4,
	})
	run("unbalanced (unbounded lead)", asyncmg.DistConfig{
		Method: asyncmg.Multadd, MaxCorrections: 30, MaxLead: -1,
	})

	fmt.Println("\nThe balanced runs converge despite stale reads; the unbounded-lead run")
	fmt.Println("degenerates to 'all coarse corrections first, then all fine corrections'")
	fmt.Println("— the unbalanced regime in which the paper notes convergence is lost.")

	fmt.Println("\nSame solve on a faulty interconnect (seeded, deterministic):")
	runFaulty := func(label string, fc asyncmg.FaultConfig) {
		cfg := asyncmg.DistConfig{
			Method: asyncmg.Multadd, MaxCorrections: 30,
			WatchdogTimeout: 5 * time.Millisecond,
			Fault:           fc,
		}
		res, err := asyncmg.SolveDistributed(setup, b, cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-28s rel res %.3e  drops %3d  crashes %d  respawns %d  retired %v\n",
			label, res.RelRes, res.Drops, res.Crashes, res.Respawns, res.RetiredGrids)
	}
	runFaulty("20% message loss", asyncmg.FaultConfig{Seed: 1, DropRate: 0.2})
	runFaulty("worker 1 crashes", asyncmg.FaultConfig{Seed: 1, CrashAt: map[int]int{1: 5}})
	runFaulty("coarsest grid dead", asyncmg.FaultConfig{
		Seed: 1, DeadGrids: []int{setup.NumLevels() - 1},
	})

	fmt.Println("\nThe watchdog rebroadcasts past drops, respawns the crashed worker, and")
	fmt.Println("retires the dead grid so the survivors still finish their corrections.")
}
