// Poisson on the unit ball: assembles the P1 finite-element Laplacian on a
// curved tetrahedral mesh (the paper's "MFEM Laplace" test family) and
// compares the convergence of the classical multiplicative method against
// the two additive methods, sequentially and asynchronously.
package main

import (
	"fmt"
	"log"

	"asyncmg"
)

func main() {
	// Tetrahedral mesh of the unit ball; boundary nodes carry homogeneous
	// Dirichlet conditions.
	mesh := asyncmg.BallMesh(12)
	prob, err := asyncmg.AssembleLaplace(mesh)
	if err != nil {
		log.Fatal(err)
	}
	a := prob.A
	fmt.Printf("FEM Laplace on the ball: %d unknowns, %d nonzeros\n", a.Rows, a.NNZ())

	// The FEM families use ω = 0.5 (Section V of the paper); Figure 5 uses
	// no aggressive coarsening.
	amgOpt := asyncmg.DefaultAMGOptions()
	amgOpt.AggressiveLevels = 0
	smo := asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.5, Blocks: 1}
	setup, err := asyncmg.NewSetup(a, amgOpt, smo)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hierarchy: %v\n", setup.H.GridSizes())

	b := asyncmg.RandomRHS(a.Rows, 7)
	const cycles = 60

	fmt.Println("\nsequential solvers, rel res after", cycles, "V-cycles:")
	for _, m := range []asyncmg.Method{asyncmg.Mult, asyncmg.Multadd, asyncmg.AFACx} {
		_, hist := asyncmg.SolveSync(setup, m, b, cycles)
		fmt.Printf("  %-8v %.3e\n", m, hist[len(hist)-1])
	}

	fmt.Println("\nasynchronous solvers (8 goroutines):")
	for _, m := range []asyncmg.Method{asyncmg.Multadd, asyncmg.AFACx} {
		res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
			Method: m, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes,
			Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: cycles,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8v %.3e in %v\n", m, res.RelRes, res.Elapsed)
	}

	// Scatter the solution back onto the full mesh (Dirichlet nodes zero).
	x, _ := asyncmg.SolveSync(setup, asyncmg.Mult, b, cycles)
	full := prob.Expand(x)
	fmt.Printf("\nsolution scattered to %d mesh nodes (boundary fixed at 0)\n", len(full))
}
