// Asynchronous-model explorer: runs the Section III simulation models of
// asynchronous multigrid on a 27-point Laplacian and shows how the minimum
// update probability α and the maximum read delay δ shape convergence — the
// content of Figures 1 and 2 of the paper, at a single grid size.
package main

import (
	"fmt"
	"log"

	"asyncmg"
)

func main() {
	a := asyncmg.Laplacian27pt(12)
	setup, err := asyncmg.NewSetup(a, asyncmg.DefaultAMGOptions(), asyncmg.DefaultSmoother())
	if err != nil {
		log.Fatal(err)
	}
	b := asyncmg.RandomRHS(a.Rows, 5)
	const updates = 20

	_, hist := asyncmg.SolveSync(setup, asyncmg.Multadd, b, updates)
	fmt.Printf("synchronous Multadd after %d cycles: rel res %.3e\n\n", updates, hist[len(hist)-1])

	fmt.Println("semi-async (Equation 6), delta = 0, by minimum update probability:")
	for _, alpha := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		mean := 0.0
		const runs = 5
		for r := 0; r < runs; r++ {
			res, err := asyncmg.SimulateModel(setup, b, asyncmg.ModelConfig{
				Variant: asyncmg.SemiAsync, Method: asyncmg.Multadd,
				Alpha: alpha, Delta: 0, Updates: updates, Seed: int64(100*r + 1),
			})
			if err != nil {
				log.Fatal(err)
			}
			mean += res.RelRes / runs
		}
		fmt.Printf("  alpha %.1f: mean rel res %.3e\n", alpha, mean)
	}

	fmt.Println("\nfull-async with alpha = 0.1, by maximum read delay:")
	fmt.Printf("  %8s %22s %22s\n", "delta", "solution-based (Eq 7)", "residual-based (Eq 10)")
	for _, delta := range []int{0, 2, 4, 8, 16} {
		row := []float64{}
		for _, v := range []asyncmg.ModelVariant{asyncmg.FullAsyncSolution, asyncmg.FullAsyncResidual} {
			mean := 0.0
			const runs = 5
			for r := 0; r < runs; r++ {
				res, err := asyncmg.SimulateModel(setup, b, asyncmg.ModelConfig{
					Variant: v, Method: asyncmg.Multadd,
					Alpha: 0.1, Delta: delta, Updates: updates, Seed: int64(100*r + 31),
				})
				if err != nil {
					log.Fatal(err)
				}
				mean += res.RelRes / runs
			}
			row = append(row, mean)
		}
		fmt.Printf("  %8d %22.3e %22.3e\n", delta, row[0], row[1])
	}
	fmt.Println("\nExpected shape (paper, Figs 1-2): smaller alpha and larger delta slow")
	fmt.Println("convergence but do not destroy it; residual-based reads beat")
	fmt.Println("solution-based reads at large delays.")
}
