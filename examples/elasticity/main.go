// Multi-material cantilever beam: assembles 3-D linear elasticity with
// three material segments (the paper's "MFEM Elasticity" test family, the
// hardest case in Table I) and compares the four smoothers of the paper on
// asynchronous Multadd — including the global-res variant, which the paper
// shows diverging on this problem.
package main

import (
	"fmt"
	"log"

	"asyncmg"
)

func main() {
	mesh := asyncmg.BeamMesh(4)
	prob, err := asyncmg.AssembleElasticity(mesh, asyncmg.DefaultBeamMaterials())
	if err != nil {
		log.Fatal(err)
	}
	a := prob.A
	fmt.Printf("elasticity beam: %d DOFs, %d nonzeros, 3 materials\n", a.Rows, a.NNZ())

	b := asyncmg.RandomRHS(a.Rows, 3)
	const cycles = 80

	fmt.Println("\nasync Multadd (local-res, lock-write) by smoother:")
	for _, kind := range []asyncmg.SmootherKind{
		asyncmg.WJacobi, asyncmg.L1Jacobi, asyncmg.HybridJGS, asyncmg.AsyncGS,
	} {
		// Each smoother needs its own setup: Multadd's smoothed
		// interpolants depend on the smoother's iteration matrix. The
		// unknown approach (NumFunctions = 3) keeps the x/y/z displacement
		// components from mixing in the AMG setup.
		amgOpt := asyncmg.DefaultAMGOptions()
		amgOpt.AggressiveLevels = 0
		amgOpt.NumFunctions = 3
		smo := asyncmg.SmootherConfig{Kind: kind, Omega: 0.5, Blocks: 1}
		setup, err := asyncmg.NewSetup(a, amgOpt, smo)
		if err != nil {
			log.Fatal(err)
		}
		res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
			Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: asyncmg.LocalRes,
			Criterion: asyncmg.Criterion2, Threads: 8, MaxCycles: cycles,
		})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.Diverged {
			marker = "  † diverged"
		}
		fmt.Printf("  %-12v rel res %.3e in %v%s\n", kind, res.RelRes, res.Elapsed, marker)
	}

	// The paper's Table I shows global-res diverging on elasticity for
	// every smoother: reproduce that contrast with ω-Jacobi.
	fmt.Println("\nglobal-res vs local-res (ω-Jacobi):")
	amgOpt := asyncmg.DefaultAMGOptions()
	amgOpt.AggressiveLevels = 0
	amgOpt.NumFunctions = 3
	setup, err := asyncmg.NewSetup(a, amgOpt,
		asyncmg.SmootherConfig{Kind: asyncmg.WJacobi, Omega: 0.5, Blocks: 1})
	if err != nil {
		log.Fatal(err)
	}
	for _, rm := range []asyncmg.ResMode{asyncmg.LocalRes, asyncmg.GlobalRes} {
		res, err := asyncmg.SolveAsync(setup, b, asyncmg.AsyncConfig{
			Method: asyncmg.Multadd, Write: asyncmg.LockWrite, Res: rm,
			Criterion: asyncmg.Criterion1, Threads: 8, MaxCycles: cycles,
		})
		if err != nil {
			log.Fatal(err)
		}
		marker := ""
		if res.Diverged {
			marker = "  † diverged"
		}
		fmt.Printf("  %-12v rel res %.3e%s\n", rm, res.RelRes, marker)
	}
}
